//! Metrics registry: counters, gauges, log-bucketed histograms.
//!
//! Metrics are **deterministic artifacts**: everything recorded into them
//! on the serving path is either integer-valued (ticks, counts — whose
//! sums are exact in f64 and order-independent) or recorded from the
//! serial control path, so a snapshot is a pure function of the seed and
//! byte-identical across worker-thread counts. Wall-clock measurements
//! belong in [`crate::profile`], not here.
//!
//! A [`MetricsRegistry`] hands out `Arc` handles keyed by name (hold the
//! handle; the hot path is then a single atomic op). Snapshots render to
//! Prometheus-style text exposition plus JSON/CSV in the same hand-rolled
//! emitter style as `serve::report`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Largest number of observations a [`Histogram`] keeps as exact samples.
/// At or below this count `percentile` answers exactly (nearest rank over
/// the sorted reservoir); beyond it the reservoir spills and estimates
/// fall back to bucket upper bounds, exact to within one bucket width.
pub const EXACT_SAMPLE_CAP: usize = 1024;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins gauge (f64 bits in an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Bucketing scheme for a [`Histogram`]: an underflow bucket `[0, lo]`,
/// `buckets` geometric buckets `(lo·g^(i-1), lo·g^i]`, and an overflow
/// bucket above the last boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramConfig {
    /// Upper bound of the underflow bucket (first geometric boundary).
    pub lo: f64,
    /// Geometric growth factor between bucket boundaries (> 1).
    pub growth: f64,
    /// Number of geometric buckets between `lo` and the overflow bucket.
    pub buckets: usize,
}

impl HistogramConfig {
    /// Default scheme for virtual-time latencies in ticks: boundaries
    /// 1, 2, 4, … 2^24 — covers any realistic queue delay at tick
    /// resolution with bucket width = the value's own magnitude.
    pub fn latency_ticks() -> HistogramConfig {
        HistogramConfig {
            lo: 1.0,
            growth: 2.0,
            buckets: 24,
        }
    }

    /// Upper boundary of bucket `i` (`i == 0` is the underflow bucket).
    pub fn upper_bound(&self, i: usize) -> f64 {
        self.lo * self.growth.powi(i as i32)
    }

    /// Index of the bucket containing `v` (0 = underflow,
    /// `buckets + 1` = overflow).
    pub fn bucket_of(&self, v: f64) -> usize {
        // NaN compares Greater with nothing, so it lands in underflow.
        if v.partial_cmp(&self.lo) != Some(std::cmp::Ordering::Greater) {
            return 0;
        }
        for i in 1..=self.buckets {
            if v <= self.upper_bound(i) {
                return i;
            }
        }
        self.buckets + 1
    }
}

/// Log-bucketed histogram with atomic bucket counts and a bounded
/// reservoir of exact samples.
///
/// Up to [`EXACT_SAMPLE_CAP`] finite observations are retained verbatim,
/// so `percentile` is *exact* on short streams (the 192-request serving
/// streams SLO verdicts depend on). Past the cap — or on any non-finite
/// observation — the reservoir spills and estimates fall back to bucket
/// upper bounds, exact to within one bucket width of the nearest-rank
/// percentile (tested against `serve::scheduler::percentile`). Whether
/// the reservoir spills depends only on the total observation count and
/// finiteness, never on thread interleaving, and the retained multiset
/// is order-independent, so percentiles stay deterministic artifacts.
/// Merging adds bucket counts, which is associative and commutative;
/// reservoirs concatenate while the union fits and spill otherwise,
/// which preserves associativity of the merged state.
#[derive(Debug)]
pub struct Histogram {
    config: HistogramConfig,
    /// `config.buckets + 2` counts: underflow, geometric, overflow.
    counts: Vec<AtomicU64>,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
    /// Exact samples until `spilled`; cleared on spill.
    samples: Mutex<Vec<f64>>,
    spilled: AtomicBool,
}

impl Histogram {
    /// An empty histogram with the given bucketing scheme.
    pub fn new(config: HistogramConfig) -> Histogram {
        Histogram {
            config,
            counts: (0..config.buckets + 2).map(|_| AtomicU64::new(0)).collect(),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            samples: Mutex::new(Vec::new()),
            spilled: AtomicBool::new(false),
        }
    }

    /// The bucketing scheme.
    pub fn config(&self) -> HistogramConfig {
        self.config
    }

    /// Record one observation. Negative and non-finite values are
    /// clamped into the underflow/overflow buckets.
    pub fn observe(&self, v: f64) {
        let idx = if v.is_nan() {
            0
        } else {
            self.config.bucket_of(v)
        };
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
        fold_f64(&self.sum_bits, v, |acc, v| acc + v);
        fold_f64(&self.min_bits, v, f64::min);
        fold_f64(&self.max_bits, v, f64::max);
        self.note_sample(v);
    }

    /// Feed the exact-sample reservoir; spill (and free) it on the first
    /// non-finite observation or when the cap is exceeded. `spilled` is
    /// only ever set under the samples lock, so the double check is safe.
    fn note_sample(&self, v: f64) {
        if self.spilled.load(Ordering::Relaxed) {
            return;
        }
        let mut s = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        if self.spilled.load(Ordering::Relaxed) {
            return;
        }
        if !v.is_finite() || s.len() >= EXACT_SAMPLE_CAP {
            self.spilled.store(true, Ordering::Relaxed);
            s.clear();
            s.shrink_to_fit();
        } else {
            s.push(v);
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Sum of observations (exact for integer-valued samples).
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// Smallest observation (NaN when empty).
    pub fn min(&self) -> f64 {
        let v = f64::from_bits(self.min_bits.load(Ordering::Relaxed));
        if v.is_infinite() && self.count() == 0 {
            f64::NAN
        } else {
            v
        }
    }

    /// Largest observation (NaN when empty).
    pub fn max(&self) -> f64 {
        let v = f64::from_bits(self.max_bits.load(Ordering::Relaxed));
        if v.is_infinite() && self.count() == 0 {
            f64::NAN
        } else {
            v
        }
    }

    /// Snapshot of the raw bucket counts (underflow first).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }

    /// Nearest-rank percentile for `q` in `(0, 1]`. While the exact
    /// reservoir holds (≤ [`EXACT_SAMPLE_CAP`] finite samples) this is
    /// the rank-`⌈q·n⌉` sample itself — exact, matching
    /// `scheduler::percentile`. After a spill it is the upper bound of
    /// the bucket holding that rank (the recorded max for the overflow
    /// bucket, so the estimate never exceeds it).
    ///
    /// NaN on an empty histogram, matching `scheduler::percentile`.
    pub fn percentile(&self, q: f64) -> f64 {
        if !self.spilled.load(Ordering::Relaxed) {
            let s = self.samples.lock().unwrap_or_else(|e| e.into_inner());
            if !self.spilled.load(Ordering::Relaxed) {
                if s.is_empty() {
                    return f64::NAN;
                }
                let mut sorted = s.clone();
                sorted.sort_by(f64::total_cmp);
                let n = sorted.len();
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                return sorted[rank - 1];
            }
        }
        let counts = self.bucket_counts();
        let n: u64 = counts.iter().sum();
        if n == 0 {
            return f64::NAN;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i == counts.len() - 1 {
                    self.max()
                } else {
                    self.config.upper_bound(i).min(self.max())
                };
            }
        }
        self.max()
    }

    /// Fold another histogram (same config) into this one. Bucket-count
    /// addition, so merging is associative and commutative; panics on a
    /// config mismatch.
    pub fn merge(&self, other: &Histogram) {
        assert_eq!(
            self.config, other.config,
            "histogram config mismatch in merge"
        );
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        fold_f64(&self.sum_bits, other.sum(), |a, b| a + b);
        fold_f64(
            &self.min_bits,
            f64::from_bits(other.min_bits.load(Ordering::Relaxed)),
            f64::min,
        );
        fold_f64(
            &self.max_bits,
            f64::from_bits(other.max_bits.load(Ordering::Relaxed)),
            f64::max,
        );
        // Reservoirs concatenate while both sides are exact and the union
        // still fits; otherwise this side spills. The final spilled state
        // depends only on the total count and per-part spill flags, never
        // on merge grouping, so merging stays associative.
        let theirs = {
            let o = other.samples.lock().unwrap_or_else(|e| e.into_inner());
            if other.spilled.load(Ordering::Relaxed) {
                None
            } else {
                Some(o.clone())
            }
        };
        let mut mine = self.samples.lock().unwrap_or_else(|e| e.into_inner());
        match theirs {
            Some(os)
                if !self.spilled.load(Ordering::Relaxed)
                    && mine.len() + os.len() <= EXACT_SAMPLE_CAP =>
            {
                mine.extend_from_slice(&os);
            }
            _ => {
                self.spilled.store(true, Ordering::Relaxed);
                mine.clear();
                mine.shrink_to_fit();
            }
        }
    }
}

/// CAS-fold `v` into an f64 stored as bits.
fn fold_f64(bits: &AtomicU64, v: f64, f: impl Fn(f64, f64) -> f64) {
    let mut cur = bits.load(Ordering::Relaxed);
    loop {
        let next = f(f64::from_bits(cur), v).to_bits();
        match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(actual) => cur = actual,
        }
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Instance-based (share by `Arc`) so
/// concurrent runs and tests stay isolated.
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or create the counter `name`. Panics if `name` is already a
    /// different metric type.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} is not a gauge"),
        }
    }

    /// Get or create the histogram `name` with `config` (ignored if the
    /// histogram already exists).
    pub fn histogram(&self, name: &str, config: HistogramConfig) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new(config))))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} is not a histogram"),
        }
    }

    /// Snapshot every metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let entries = map
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                    Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Metric::Histogram(h) => SnapshotValue::Histogram {
                        config: h.config(),
                        counts: h.bucket_counts(),
                        sum: h.sum(),
                        min: h.min(),
                        max: h.max(),
                        p50: h.percentile(0.50),
                        p99: h.percentile(0.99),
                        p999: h.percentile(0.999),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        MetricsSnapshot { entries }
    }
}

/// Compose a metric name with `label="value"` pairs,
/// Prometheus-style: `labeled("x_total", &[("member", "1")])` →
/// `x_total{member="1"}`. Label values are escaped (backslash, double
/// quote, newline — the Prometheus text-format rules), so a hostile
/// value cannot break out of its quotes or inject exposition lines.
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    format!("{name}{{{}}}", body.join(","))
}

/// Backslash-escape `\`, `"`, and newline in a label value (the escape
/// set of the Prometheus text exposition format).
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Point-in-time value of one metric.
#[derive(Clone, Debug)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram state: bucket counts (underflow first) plus summary
    /// statistics and percentile estimates.
    Histogram {
        /// Bucketing scheme.
        config: HistogramConfig,
        /// Per-bucket counts, underflow bucket first.
        counts: Vec<u64>,
        /// Sum of observations.
        sum: f64,
        /// Smallest observation (NaN when empty).
        min: f64,
        /// Largest observation (NaN when empty).
        max: f64,
        /// Median estimate.
        p50: f64,
        /// 99th-percentile estimate.
        p99: f64,
        /// 99.9th-percentile estimate.
        p999: f64,
    },
}

/// A sorted point-in-time snapshot of a registry, with text emitters.
#[derive(Clone, Debug)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, SnapshotValue)>,
}

/// Shortest-round-trip f64 for text exposition; `NaN` for non-finite
/// (Prometheus accepts it, and it keeps the artifact deterministic).
fn prom_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "NaN".to_string()
    }
}

/// JSON number, `null` when non-finite (matches `safelight::eval` style).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// CSV field, empty when non-finite (matches `serve::report` style).
fn csv_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new()
    }
}

/// Split `name{labels}` into (base, labels-with-braces-stripped).
pub(crate) fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.split_once('{') {
        Some((base, rest)) => (base, rest.strip_suffix('}')),
        None => (name, None),
    }
}

/// A raw newline or carriage return in a metric *name* would break the
/// line-oriented exposition; escape it visibly. Label values are already
/// escaped upstream in [`labeled`], so this only fires on hostile base
/// names.
fn prom_name(name: &str) -> String {
    if name.contains(['\n', '\r']) {
        name.replace('\r', "\\r").replace('\n', "\\n")
    } else {
        name.to_string()
    }
}

impl MetricsSnapshot {
    /// Prometheus text exposition format.
    pub fn prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed: Option<String> = None;
        for (name, value) in &self.entries {
            let name = prom_name(name);
            let name = name.as_str();
            let (base, _) = split_labels(name);
            let ty = match value {
                SnapshotValue::Counter(_) => "counter",
                SnapshotValue::Gauge(_) => "gauge",
                SnapshotValue::Histogram { .. } => "histogram",
            };
            if last_typed.as_deref() != Some(base) {
                out.push_str(&format!("# TYPE {base} {ty}\n"));
                last_typed = Some(base.to_string());
            }
            match value {
                SnapshotValue::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                SnapshotValue::Gauge(v) => {
                    out.push_str(&format!("{name} {}\n", prom_num(*v)));
                }
                SnapshotValue::Histogram {
                    config,
                    counts,
                    sum,
                    ..
                } => {
                    let (b, labels) = split_labels(name);
                    let series = |extra: &str| match labels {
                        Some(l) if !l.is_empty() => format!("{b}_bucket{{{l},{extra}}}"),
                        _ => format!("{b}_bucket{{{extra}}}"),
                    };
                    let mut cum = 0u64;
                    for (i, &c) in counts.iter().enumerate() {
                        cum += c;
                        let le = if i == counts.len() - 1 {
                            "+Inf".to_string()
                        } else {
                            prom_num(config.upper_bound(i))
                        };
                        out.push_str(&format!("{} {cum}\n", series(&format!("le=\"{le}\""))));
                    }
                    let suffix = |s: &str| match labels {
                        Some(l) if !l.is_empty() => format!("{b}_{s}{{{l}}}"),
                        _ => format!("{b}_{s}"),
                    };
                    out.push_str(&format!("{} {}\n", suffix("sum"), prom_num(*sum)));
                    out.push_str(&format!("{} {cum}\n", suffix("count")));
                }
            }
        }
        out
    }

    /// JSON object keyed by metric name, in the emitter style of
    /// `serve::report` (hand-rolled, no serde; non-finite → null).
    pub fn json(&self) -> String {
        let mut parts = Vec::new();
        for (name, value) in &self.entries {
            let body = match value {
                SnapshotValue::Counter(v) => format!("{{\"type\":\"counter\",\"value\":{v}}}"),
                SnapshotValue::Gauge(v) => {
                    format!("{{\"type\":\"gauge\",\"value\":{}}}", json_num(*v))
                }
                SnapshotValue::Histogram {
                    counts,
                    sum,
                    min,
                    max,
                    p50,
                    p99,
                    p999,
                    ..
                } => {
                    let rendered: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
                    format!(
                        "{{\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p99\":{},\"p999\":{},\"bucket_counts\":[{}]}}",
                        counts.iter().sum::<u64>(),
                        json_num(*sum),
                        json_num(*min),
                        json_num(*max),
                        json_num(*p50),
                        json_num(*p99),
                        json_num(*p999),
                        rendered.join(",")
                    )
                }
            };
            parts.push(format!("{}:{body}", json_string(name)));
        }
        format!("{{{}}}\n", parts.join(","))
    }

    /// CSV: `# name,type,value,count,sum,min,max,p50,p99,p999` header
    /// comment then one row per metric (histogram rows fill every
    /// column). Names containing commas, quotes, or newlines — labeled
    /// series always do — are RFC 4180-quoted so the rows stay parseable.
    pub fn csv(&self) -> String {
        let mut out = String::from("# name,type,value,count,sum,min,max,p50,p99,p999\n");
        for (name, value) in &self.entries {
            let name = csv_field(name);
            let row = match value {
                SnapshotValue::Counter(v) => {
                    format!("{name},counter,{v},,,,,,,")
                }
                SnapshotValue::Gauge(v) => {
                    format!("{name},gauge,{},,,,,,,", csv_num(*v))
                }
                SnapshotValue::Histogram {
                    counts,
                    sum,
                    min,
                    max,
                    p50,
                    p99,
                    p999,
                    ..
                } => {
                    format!(
                        "{name},histogram,,{},{},{},{},{},{},{}",
                        counts.iter().sum::<u64>(),
                        csv_num(*sum),
                        csv_num(*min),
                        csv_num(*max),
                        csv_num(*p50),
                        csv_num(*p99),
                        csv_num(*p999)
                    )
                }
            };
            out.push_str(&row);
            out.push('\n');
        }
        out
    }
}

/// RFC 4180 quoting for one CSV field: wrap in double quotes (doubling
/// embedded quotes) when the field contains a comma, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Minimal JSON string escaping (names are ASCII identifiers + labels).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("requests_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = reg.gauge("queue_depth");
        g.set(3.5);
        assert_eq!(g.get(), 3.5);
        // Handles alias the registry entry.
        assert_eq!(reg.counter("requests_total").get(), 5);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.gauge("x");
        reg.counter("x");
    }

    #[test]
    fn histogram_empty_and_single_sample() {
        let h = Histogram::new(HistogramConfig::latency_ticks());
        assert_eq!(h.count(), 0);
        assert!(
            h.percentile(0.5).is_nan(),
            "empty histogram → NaN like percentile()"
        );
        assert!(h.min().is_nan());
        assert!(h.max().is_nan());

        h.observe(7.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 7.0);
        assert_eq!(h.max(), 7.0);
        // Single sample: every percentile lands in its bucket (4, 8];
        // the estimate is capped at the recorded max.
        for q in [0.01, 0.5, 0.99, 1.0] {
            let est = h.percentile(q);
            assert!((4.0..=7.0).contains(&est), "q={q} est={est}");
        }
    }

    #[test]
    fn histogram_percentile_within_one_bucket_width() {
        // Integer "latency tick" samples shaped like a serving run:
        // mostly small queue delays with a heavy tail.
        let samples: Vec<f64> = (0..500)
            .map(|i| {
                let i = i as f64;
                (1.0 + (i * i * 0.017) % 97.0).floor()
            })
            .collect();
        let h = Histogram::new(HistogramConfig::latency_ticks());
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 1.0] {
            // Exact nearest-rank percentile (scheduler::percentile's rule).
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.percentile(q);
            // One bucket width: the bucket containing the exact value.
            let cfg = h.config();
            let b = cfg.bucket_of(exact);
            let width = if b == 0 {
                cfg.lo
            } else {
                cfg.upper_bound(b) - cfg.upper_bound(b - 1)
            };
            assert!(
                (est - exact).abs() <= width,
                "q={q}: est {est} vs exact {exact}, width {width}"
            );
        }
    }

    #[test]
    fn histogram_merge_is_associative() {
        let cfg = HistogramConfig::latency_ticks();
        let make = |vals: &[f64]| {
            let h = Histogram::new(cfg);
            for &v in vals {
                h.observe(v);
            }
            h
        };
        // Integer-valued samples → exact sums → full associativity.
        let a = make(&[1.0, 3.0, 900.0]);
        let b = make(&[2.0, 2.0, 64.0]);
        let c = make(&[17.0]);

        // (a ⊕ b) ⊕ c
        let left = make(&[]);
        left.merge(&a);
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let bc = make(&[]);
        bc.merge(&b);
        bc.merge(&c);
        let right = make(&[]);
        right.merge(&a);
        right.merge(&bc);

        assert_eq!(left.bucket_counts(), right.bucket_counts());
        assert_eq!(left.count(), right.count());
        assert_eq!(left.sum(), right.sum());
        assert_eq!(left.min(), right.min());
        assert_eq!(left.max(), right.max());
        // And merge agrees with recording everything into one histogram.
        let direct = make(&[1.0, 3.0, 900.0, 2.0, 2.0, 64.0, 17.0]);
        assert_eq!(left.bucket_counts(), direct.bucket_counts());
        assert_eq!(left.sum(), direct.sum());
    }

    #[test]
    fn snapshot_is_sorted_and_renders() {
        let reg = MetricsRegistry::new();
        reg.counter("z_total").add(2);
        reg.gauge("a_depth").set(1.0);
        let h = reg.histogram("m_latency_ticks", HistogramConfig::latency_ticks());
        h.observe(3.0);
        h.observe(90.0);

        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_depth", "m_latency_ticks", "z_total"]);

        let prom = snap.prometheus();
        assert!(prom.contains("# TYPE a_depth gauge"));
        assert!(prom.contains("# TYPE m_latency_ticks histogram"));
        assert!(prom.contains("m_latency_ticks_bucket{le=\"+Inf\"} 2"));
        assert!(prom.contains("m_latency_ticks_count 2"));
        assert!(prom.contains("z_total 2"));

        let json = snap.json();
        assert!(json.contains("\"z_total\":{\"type\":\"counter\",\"value\":2}"));
        assert!(json.ends_with("}\n"));

        let csv = snap.csv();
        assert!(csv.starts_with("# name,type,value,count,sum,min,max,p50,p99,p999\n"));
        assert!(csv.contains("z_total,counter,2,,,,,,,\n"));
    }

    #[test]
    fn labeled_series_render() {
        assert_eq!(labeled("x_total", &[]), "x_total");
        assert_eq!(
            labeled("x_total", &[("member", "1")]),
            "x_total{member=\"1\"}"
        );
        let reg = MetricsRegistry::new();
        reg.counter(&labeled("served_total", &[("member", "0")]))
            .add(3);
        let h = reg.histogram(
            &labeled("lat_ticks", &[("member", "0")]),
            HistogramConfig::latency_ticks(),
        );
        h.observe(2.0);
        let prom = reg.snapshot().prometheus();
        assert!(prom.contains("served_total{member=\"0\"} 3"));
        assert!(prom.contains("lat_ticks_bucket{member=\"0\",le=\"1\"} 0"));
        assert!(prom.contains("lat_ticks_sum{member=\"0\"} 2"));
        assert!(prom.contains("# TYPE lat_ticks histogram"));
    }

    /// The deterministic sample shape shared by the reservoir tests:
    /// mostly small queue delays with a heavy tail.
    fn tick_samples(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                let i = i as f64;
                (1.0 + (i * i * 0.017) % 97.0).floor()
            })
            .collect()
    }

    #[test]
    fn percentile_is_exact_below_reservoir_cap() {
        let samples = tick_samples(500);
        let h = Histogram::new(HistogramConfig::latency_ticks());
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.1, 0.5, 0.9, 0.95, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            assert_eq!(h.percentile(q), sorted[rank - 1], "q={q} not exact");
        }
    }

    #[test]
    fn percentile_falls_back_to_buckets_past_cap() {
        let samples = tick_samples(2 * EXACT_SAMPLE_CAP);
        let h = Histogram::new(HistogramConfig::latency_ticks());
        for &s in &samples {
            h.observe(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let cfg = h.config();
        for q in [0.1, 0.5, 0.9, 0.99, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let est = h.percentile(q);
            let b = cfg.bucket_of(exact);
            let width = if b == 0 {
                cfg.lo
            } else {
                cfg.upper_bound(b) - cfg.upper_bound(b - 1)
            };
            assert!(
                (est - exact).abs() <= width,
                "q={q}: est {est} vs exact {exact}, width {width}"
            );
        }
    }

    #[test]
    fn non_finite_observation_spills_reservoir() {
        let h = Histogram::new(HistogramConfig::latency_ticks());
        h.observe(3.0);
        h.observe(f64::INFINITY);
        h.observe(5.0);
        // Spilled: rank-2 of {3, 5, +inf} lands in the (4, 8] bucket, so
        // the estimate is the bucket upper bound, not the exact sample.
        assert_eq!(h.percentile(0.5), 8.0);
        assert_eq!(h.count(), 3);
    }

    #[test]
    fn merge_concatenates_exact_reservoirs() {
        let cfg = HistogramConfig::latency_ticks();
        let a = Histogram::new(cfg);
        let b = Histogram::new(cfg);
        for v in [5.0, 1.0, 9.0] {
            a.observe(v);
        }
        for v in [2.0, 7.0] {
            b.observe(v);
        }
        a.merge(&b);
        // Exact nearest-rank over the union {1, 2, 5, 7, 9}.
        assert_eq!(a.percentile(0.2), 1.0);
        assert_eq!(a.percentile(0.5), 5.0);
        assert_eq!(a.percentile(1.0), 9.0);
    }

    #[test]
    fn hostile_label_values_escape_in_all_formats() {
        let hostile = "a\"b\\c\nd";
        let name = labeled("hostile_total", &[("scenario", hostile)]);
        // The composed series name carries no raw newline or bare quote.
        assert_eq!(name, "hostile_total{scenario=\"a\\\"b\\\\c\\nd\"}");

        let reg = MetricsRegistry::new();
        reg.counter(&name).add(1);
        reg.counter("bad\nname_total").add(2);
        let snap = reg.snapshot();

        let prom = snap.prometheus();
        // Two TYPE lines + two sample lines: nothing injected a line.
        assert_eq!(prom.lines().count(), 4, "prom:\n{prom}");
        assert!(prom.contains("scenario=\"a\\\"b\\\\c\\nd\"} 1"));
        assert!(prom.contains("bad\\nname_total 2"));

        let json = snap.json();
        assert_eq!(json.lines().count(), 1, "json stays one line");
        assert!(json.contains(&json_string(&name)));

        let csv = snap.csv();
        let quoted = csv
            .lines()
            .find(|l| l.contains("hostile_total"))
            .expect("hostile row present");
        assert!(quoted.starts_with('"'), "labeled name quoted: {quoted}");
        assert!(quoted.contains("\"\""), "embedded quotes doubled: {quoted}");
        assert!(csv.contains("\"bad\nname_total\""), "newline name quoted");
    }
}

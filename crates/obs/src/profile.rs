//! Gated scoped wall-clock profiling.
//!
//! A [`ProfileSpan`] brackets a phase (a GEMM kernel call, a telemetry
//! probe sweep, detector scoring, a remap, a batch-service phase) and
//! aggregates into a global per-phase table: count, total, min, max
//! nanoseconds. The profiler is **off by default**; when off, opening a
//! span is a single relaxed atomic load and the clock is never read, so
//! instrumentation left in hot paths (the GEMM entry points run inside
//! the serving inner loop) costs nanoseconds. `repro --profile` turns it
//! on and prints the per-phase table.
//!
//! Wall-clock numbers are machine-dependent **measurement**, never part
//! of committed artifacts — the deterministic side lives in
//! [`crate::trace`] and [`crate::metrics`].
//!
//! The aggregation table is global (keyed by `(phase, class)` static
//! strings) rather than threaded through call sites, because the GEMM
//! kernels sit several layers below anything that could carry a handle;
//! tests that assert on profile contents should [`profile_reset`] first
//! and must tolerate concurrent recording.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Aggregated wall-clock statistics for one phase.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseStats {
    /// Number of completed spans.
    pub count: u64,
    /// Total nanoseconds across spans.
    pub total_ns: u64,
    /// Shortest span in nanoseconds.
    pub min_ns: u64,
    /// Longest span in nanoseconds.
    pub max_ns: u64,
}

impl PhaseStats {
    /// Mean span duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns;
    }
}

type PhaseKey = (&'static str, &'static str);

static PHASES: Mutex<BTreeMap<PhaseKey, PhaseStats>> = Mutex::new(BTreeMap::new());

/// Turn profiling on or off globally.
pub fn set_profile_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
#[inline]
pub fn profile_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Clear the aggregation table (typically right after enabling, so a run
/// starts from a clean slate).
pub fn profile_reset() {
    PHASES.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Snapshot the per-phase table, sorted by `(phase, class)`. Keys render
/// as `phase/class` (or just `phase` when the class is empty).
pub fn profile_phases() -> Vec<(String, PhaseStats)> {
    PHASES
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(&(phase, class), &stats)| {
            let name = if class.is_empty() {
                phase.to_string()
            } else {
                format!("{phase}/{class}")
            };
            (name, stats)
        })
        .collect()
}

/// Open a span for `phase` (no shape class).
#[inline]
pub fn profile_span(phase: &'static str) -> ProfileSpan {
    profile_span_class(phase, "")
}

/// Open a span for `phase` with a shape/kind `class` (e.g. a GEMM entry
/// point with its dispatch class: `("gemm_matmul", "serial")`).
#[inline]
pub fn profile_span_class(phase: &'static str, class: &'static str) -> ProfileSpan {
    if profile_enabled() {
        ProfileSpan {
            key: Some((phase, class)),
            start: Some(Instant::now()),
        }
    } else {
        ProfileSpan {
            key: None,
            start: None,
        }
    }
}

/// Scoped timer guard; records into the global table on drop. When the
/// profiler is disabled this is an inert pair of `None`s.
pub struct ProfileSpan {
    key: Option<PhaseKey>,
    start: Option<Instant>,
}

impl Drop for ProfileSpan {
    fn drop(&mut self) {
        if let (Some(key), Some(start)) = (self.key, self.start) {
            let ns = start.elapsed().as_nanos() as u64;
            PHASES
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .entry(key)
                .or_default()
                .record(ns);
        }
    }
}

/// Render the per-phase table as aligned text (the `repro --profile`
/// output). Phases are sorted by self time, hottest first (name breaks
/// ties), and each row carries its share of the total so the hot phase
/// reads off the first line. Durations are wall clock; never commit this.
pub fn render_table(phases: &[(String, PhaseStats)]) -> String {
    let mut rows: Vec<&(String, PhaseStats)> = phases.iter().collect();
    rows.sort_by(|(an, a), (bn, b)| b.total_ns.cmp(&a.total_ns).then_with(|| an.cmp(bn)));
    let grand_total: u64 = rows.iter().map(|(_, s)| s.total_ns).sum();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<36} {:>10} {:>14} {:>7} {:>12} {:>12} {:>12}\n",
        "phase", "count", "total_ms", "pct", "mean_us", "min_us", "max_us"
    ));
    for (name, s) in rows {
        let pct = if grand_total > 0 {
            100.0 * s.total_ns as f64 / grand_total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<36} {:>10} {:>14.3} {:>6.1}% {:>12.2} {:>12.2} {:>12.2}\n",
            name,
            s.count,
            s.total_ns as f64 / 1e6,
            pct,
            s.mean_ns() as f64 / 1e3,
            s.min_ns as f64 / 1e3,
            s.max_ns as f64 / 1e3,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // The profiler is global state shared across the test binary's
    // threads; these tests use phase names unique to themselves instead
    // of asserting on the whole table.

    #[test]
    fn disabled_spans_record_nothing() {
        set_profile_enabled(false);
        {
            let _s = profile_span("test_disabled_phase");
        }
        assert!(
            !profile_phases()
                .iter()
                .any(|(n, _)| n == "test_disabled_phase"),
            "span recorded while disabled"
        );
    }

    #[test]
    fn enabled_spans_aggregate() {
        set_profile_enabled(true);
        for _ in 0..3 {
            let _s = profile_span_class("test_enabled_phase", "classa");
        }
        set_profile_enabled(false);
        let phases = profile_phases();
        let (_, stats) = phases
            .iter()
            .find(|(n, _)| n == "test_enabled_phase/classa")
            .expect("phase recorded");
        assert!(stats.count >= 3);
        assert!(stats.min_ns <= stats.max_ns);
        assert!(stats.total_ns >= stats.max_ns);
        assert!(stats.mean_ns() <= stats.max_ns);
    }

    #[test]
    fn table_renders_all_rows() {
        // Deliberately listed cold-first: the renderer must sort by self
        // time so the hot phase is the first data row.
        let rows = vec![
            ("probe_sweep".to_string(), PhaseStats::default()),
            (
                "gemm_matmul/serial".to_string(),
                PhaseStats {
                    count: 2,
                    total_ns: 2_000_000,
                    min_ns: 900_000,
                    max_ns: 1_100_000,
                },
            ),
        ];
        let table = render_table(&rows);
        assert!(table.contains("gemm_matmul/serial"));
        assert!(table.contains("probe_sweep"));
        assert!(table.lines().count() == 3);
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].contains("pct"));
        assert!(
            lines[1].starts_with("gemm_matmul/serial"),
            "hot phase first: {table}"
        );
        assert!(
            lines[1].contains("100.0%"),
            "sole-cost phase is 100%: {table}"
        );
        assert!(lines[2].contains("0.0%"), "{table}");
    }
}

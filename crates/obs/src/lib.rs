//! SafeLight observability plane.
//!
//! A zero-dependency (std-only) crate sitting below every other SafeLight
//! crate, providing the four observability primitives the serving stack
//! shares:
//!
//! - [`log`] — a leveled logger for human-facing diagnostics. Library
//!   crates report through it instead of printing; binaries pick the
//!   verbosity (`--quiet`/`--verbose` on `repro`).
//! - [`alert`] — the judgment layer: serializable SLO specs plus
//!   threshold and multi-window burn-rate alerting rules, evaluated
//!   against metric snapshots on virtual time only, so alert firings are
//!   byte-identical across worker-thread counts.
//! - [`trace`] — deterministic structured tracing. Events carry the serve
//!   plane's *virtual-time* tick plus a stable sequence key; the merge
//!   step orders them `(virtual time, key, payload)` so the committed
//!   trace artifact is byte-identical across worker-thread counts.
//!   Wall-clock timings never enter the committed rendering.
//! - [`metrics`] — a registry of counters, gauges and log-bucketed
//!   histograms, snapshotted to Prometheus-style text exposition plus the
//!   JSON/CSV emitter style used by `serve::report`.
//! - [`profile`] — gated scoped wall-clock timers aggregating per-phase
//!   statistics (GEMM kernels by shape class, probe sweeps, detector
//!   scoring, remap, batch phases). Disabled by default; when disabled a
//!   span is a no-op that never reads the clock.
//!
//! The split matters: traces and metrics are *deterministic artifacts*
//! (functions of the seed alone, committed and diffed in CI), while the
//! profiler is *measurement* (wall-clock, machine-dependent, reported but
//! never committed). See `docs/observability.md` for the full model.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alert;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use crate::alert::{
    default_rules, error_budget_burn, AlertEngine, AlertFiring, AlertKind, AlertRule, Cmp,
    SloInput, SloSpec, SloVerdict,
};
pub use crate::log::{max_level, set_max_level, Level};
pub use crate::metrics::{
    labeled, Counter, Gauge, Histogram, HistogramConfig, MetricsRegistry, MetricsSnapshot,
};
pub use crate::profile::{
    profile_enabled, profile_phases, profile_reset, profile_span, profile_span_class, render_table,
    set_profile_enabled, PhaseStats, ProfileSpan,
};
pub use crate::trace::{render_committed, render_profile, Stage, TraceEvent, Tracer};

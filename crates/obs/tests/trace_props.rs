//! Property tests for the trace plane's determinism contract: the
//! committed rendering of a [`Tracer`] is a function of the event
//! *multiset* alone — invariant under insertion order, shard assignment
//! (which follows thread identity), and arbitrary cross-thread
//! interleavings, including events with fully equal
//! `(vt, stage, seq, text)` keys.

use proptest::prelude::*;
use safelight_obs::{render_committed, Stage, Tracer};
use std::sync::Arc;

const STAGES: [Stage; 8] = [
    Stage::Admission,
    Stage::Recover,
    Stage::Crash,
    Stage::Compromise,
    Stage::Serve,
    Stage::Policy,
    Stage::Summary,
    Stage::Alert,
];

/// Decode one generated code into an event key. The domains are tiny on
/// purpose: collisions on every component — including full-key ties —
/// are the interesting cases for a sort-based merge.
fn decode(code: u64) -> (u64, Stage, u64, String) {
    let vt = code % 4;
    let stage = STAGES[((code / 4) % 8) as usize];
    let seq = (code / 32) % 4;
    let text = format!("event=e{}", (code / 128) % 3);
    (vt, stage, seq, text)
}

fn render(push_order: &[u64], chunks: usize) -> String {
    let tracer = Arc::new(Tracer::new());
    if chunks <= 1 {
        for &code in push_order {
            let (vt, stage, seq, text) = decode(code);
            tracer.event(vt, stage, seq, text);
        }
    } else {
        let per = push_order.len().div_ceil(chunks);
        let mut handles = Vec::new();
        for chunk in push_order.chunks(per.max(1)) {
            let chunk = chunk.to_vec();
            let tracer = Arc::clone(&tracer);
            handles.push(std::thread::spawn(move || {
                for code in chunk {
                    let (vt, stage, seq, text) = decode(code);
                    tracer.event(vt, stage, seq, text);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
    render_committed(&[], &tracer.drain_sorted())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn committed_trace_is_insertion_and_interleaving_invariant(
        codes in proptest::collection::vec(0u64..384, 1..48),
        rotate in 0usize..48,
        threads in 2usize..5,
    ) {
        let baseline = render(&codes, 1);

        // Same multiset, permuted insertion order (rotate + reverse).
        let mut permuted = codes.clone();
        let r = rotate % permuted.len();
        permuted.rotate_left(r);
        permuted.reverse();
        prop_assert_eq!(&render(&permuted, 1), &baseline);

        // Same multiset pushed from several threads: shard assignment
        // follows thread identity and the interleaving is scheduler-
        // chosen, neither may leak into the committed bytes.
        prop_assert_eq!(&render(&codes, threads), &baseline);

        // The rendering is one line per event: nothing dropped or merged
        // even when keys collide exactly.
        prop_assert_eq!(baseline.lines().count(), codes.len());
    }
}

//! Minimal software rasterizer used by the dataset generators.

/// A single-channel float canvas in `[0, 1]`.
#[derive(Debug, Clone)]
pub(crate) struct Canvas {
    pub width: usize,
    pub height: usize,
    pub pixels: Vec<f32>,
}

impl Canvas {
    pub(crate) fn new(width: usize, height: usize) -> Self {
        Self {
            width,
            height,
            pixels: vec![0.0; width * height],
        }
    }

    /// Additively blends `value` into `(x, y)`, clamping to `[0, 1]`.
    pub(crate) fn blend(&mut self, x: isize, y: isize, value: f32) {
        if x < 0 || y < 0 || x as usize >= self.width || y as usize >= self.height {
            return;
        }
        let idx = y as usize * self.width + x as usize;
        self.pixels[idx] = (self.pixels[idx] + value).clamp(0.0, 1.0);
    }

    /// Draws an anti-aliased line segment of the given half-thickness.
    pub(crate) fn line(
        &mut self,
        (x0, y0): (f32, f32),
        (x1, y1): (f32, f32),
        half_thickness: f32,
        intensity: f32,
    ) {
        let min_x = (x0.min(x1) - half_thickness - 1.0).floor() as isize;
        let max_x = (x0.max(x1) + half_thickness + 1.0).ceil() as isize;
        let min_y = (y0.min(y1) - half_thickness - 1.0).floor() as isize;
        let max_y = (y0.max(y1) + half_thickness + 1.0).ceil() as isize;
        let (dx, dy) = (x1 - x0, y1 - y0);
        let len_sq = (dx * dx + dy * dy).max(1e-9);
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let (px, py) = (x as f32, y as f32);
                // Distance from pixel to the segment.
                let t = (((px - x0) * dx + (py - y0) * dy) / len_sq).clamp(0.0, 1.0);
                let (cx, cy) = (x0 + t * dx, y0 + t * dy);
                let dist = ((px - cx).powi(2) + (py - cy).powi(2)).sqrt();
                let cover = (half_thickness + 0.5 - dist).clamp(0.0, 1.0);
                if cover > 0.0 {
                    self.blend(x, y, intensity * cover);
                }
            }
        }
    }

    /// Draws a filled, anti-aliased disk.
    pub(crate) fn disk(&mut self, (cx, cy): (f32, f32), radius: f32, intensity: f32) {
        let min_x = (cx - radius - 1.0).floor() as isize;
        let max_x = (cx + radius + 1.0).ceil() as isize;
        let min_y = (cy - radius - 1.0).floor() as isize;
        let max_y = (cy + radius + 1.0).ceil() as isize;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let dist = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                let cover = (radius + 0.5 - dist).clamp(0.0, 1.0);
                if cover > 0.0 {
                    self.blend(x, y, intensity * cover);
                }
            }
        }
    }

    /// Draws an unfilled ring of the given radius and stroke half-width.
    pub(crate) fn ring(
        &mut self,
        centre: (f32, f32),
        radius: f32,
        half_stroke: f32,
        intensity: f32,
    ) {
        let (cx, cy) = centre;
        let outer = radius + half_stroke + 1.0;
        let min_x = (cx - outer).floor() as isize;
        let max_x = (cx + outer).ceil() as isize;
        let min_y = (cy - outer).floor() as isize;
        let max_y = (cy + outer).ceil() as isize;
        for y in min_y..=max_y {
            for x in min_x..=max_x {
                let dist = ((x as f32 - cx).powi(2) + (y as f32 - cy).powi(2)).sqrt();
                let cover = (half_stroke + 0.5 - (dist - radius).abs()).clamp(0.0, 1.0);
                if cover > 0.0 {
                    self.blend(x, y, intensity * cover);
                }
            }
        }
    }

    /// Draws an axis-aligned filled rectangle.
    pub(crate) fn rect(&mut self, (x0, y0): (f32, f32), (x1, y1): (f32, f32), intensity: f32) {
        for y in y0.floor() as isize..=y1.ceil() as isize {
            for x in x0.floor() as isize..=x1.ceil() as isize {
                self.blend(x, y, intensity);
            }
        }
    }
}

/// 2-D affine transform used to jitter glyph geometry.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Affine {
    pub scale: f32,
    pub rotation: f32,
    pub translate: (f32, f32),
}

impl Affine {
    /// Maps a point from normalized glyph space `[0,1]²` to canvas pixels.
    pub(crate) fn apply(&self, (x, y): (f32, f32), canvas: f32) -> (f32, f32) {
        // Centre, rotate, scale, translate.
        let (cx, cy) = (x - 0.5, y - 0.5);
        let (sin, cos) = self.rotation.sin_cos();
        let rx = cx * cos - cy * sin;
        let ry = cx * sin + cy * cos;
        (
            (rx * self.scale + 0.5) * canvas + self.translate.0,
            (ry * self.scale + 0.5) * canvas + self.translate.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blend_clamps_and_ignores_out_of_bounds() {
        let mut c = Canvas::new(4, 4);
        c.blend(-1, 0, 1.0);
        c.blend(0, 9, 1.0);
        c.blend(1, 1, 0.7);
        c.blend(1, 1, 0.7);
        assert_eq!(c.pixels[5], 1.0);
        assert_eq!(c.pixels.iter().filter(|&&p| p > 0.0).count(), 1);
    }

    #[test]
    fn line_marks_pixels_along_the_path() {
        let mut c = Canvas::new(16, 16);
        c.line((2.0, 8.0), (13.0, 8.0), 1.0, 1.0);
        // The row through y=8 should be lit between the endpoints.
        for x in 3..13 {
            assert!(c.pixels[8 * 16 + x] > 0.5, "pixel {x} unlit");
        }
        // Far corners stay dark.
        assert_eq!(c.pixels[0], 0.0);
    }

    #[test]
    fn disk_is_roughly_circular() {
        let mut c = Canvas::new(16, 16);
        c.disk((8.0, 8.0), 4.0, 1.0);
        assert!(c.pixels[8 * 16 + 8] > 0.9);
        assert!(c.pixels[8 * 16 + 12] > 0.0);
        assert_eq!(c.pixels[0], 0.0);
    }

    #[test]
    fn ring_is_hollow() {
        let mut c = Canvas::new(32, 32);
        c.ring((16.0, 16.0), 8.0, 1.0, 1.0);
        assert!(c.pixels[16 * 32 + 16] < 0.05, "centre should be dark");
        assert!(c.pixels[16 * 32 + 24] > 0.5, "rim should be lit");
    }

    #[test]
    fn affine_identity_maps_unit_square_to_canvas() {
        let t = Affine {
            scale: 1.0,
            rotation: 0.0,
            translate: (0.0, 0.0),
        };
        let (x, y) = t.apply((0.5, 0.5), 28.0);
        assert!((x - 14.0).abs() < 1e-5 && (y - 14.0).abs() < 1e-5);
    }
}

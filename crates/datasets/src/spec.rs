//! Generation specifications shared by all synthetic datasets.

use safelight_neuro::InMemoryDataset;

/// Which of the paper's three datasets a stand-in replaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyntheticKind {
    /// MNIST stand-in: 1×28×28 glyphs.
    Digits,
    /// CIFAR-10 stand-in: 3×32×32 coloured shapes.
    TintedShapes,
    /// Imagenette stand-in: 3×64×64 composed scenes.
    TexturedScenes,
}

impl std::fmt::Display for SyntheticKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Self::Digits => "digits",
            Self::TintedShapes => "tinted-shapes",
            Self::TexturedScenes => "textured-scenes",
        };
        write!(f, "{name}")
    }
}

/// Size, seed and difficulty of a generated dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticSpec {
    /// Number of training images.
    pub train: usize,
    /// Number of test images.
    pub test: usize,
    /// Seed controlling every stochastic choice of the generator.
    pub seed: u64,
    /// Additive pixel-noise standard deviation (0 disables).
    pub noise_std: f64,
    /// Geometric jitter scale in `[0, 1]`; higher is harder.
    pub jitter: f64,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        Self {
            train: 2000,
            test: 500,
            seed: 7,
            noise_std: 0.05,
            jitter: 0.5,
        }
    }
}

/// A train/test pair produced by one generator invocation.
///
/// Train and test items are drawn from the same distribution but disjoint
/// random streams, mirroring an i.i.d. split.
#[derive(Debug, Clone)]
pub struct SplitDataset {
    /// Training split.
    pub train: InMemoryDataset,
    /// Held-out test split.
    pub test: InMemoryDataset,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_reasonable() {
        let s = SyntheticSpec::default();
        assert!(s.train > 0 && s.test > 0);
        assert!((0.0..=1.0).contains(&s.jitter));
    }

    #[test]
    fn kind_display_names_are_distinct() {
        let names: Vec<String> = [
            SyntheticKind::Digits,
            SyntheticKind::TintedShapes,
            SyntheticKind::TexturedScenes,
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
        assert_eq!(names.len(), 3);
        assert_ne!(names[0], names[1]);
        assert_ne!(names[1], names[2]);
    }
}

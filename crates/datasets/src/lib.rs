//! Deterministic synthetic image-classification datasets.
//!
//! The SafeLight paper evaluates on MNIST, CIFAR-10 and Imagenette. Those
//! corpora are not available in this environment, so this crate generates
//! procedural stand-ins with the same tensor shapes, class counts and
//! (approximate) clean-accuracy regimes:
//!
//! | Paper dataset | Stand-in | Shape | Classes |
//! |---|---|---|---|
//! | MNIST      | [`digits`] — stroke-rendered glyphs with jitter | 1×28×28 | 10 |
//! | CIFAR-10   | [`tinted_shapes`] — coloured geometric shapes on textured backgrounds | 3×32×32 | 10 |
//! | Imagenette | [`textured_scenes`] — composed texture + object scenes | 3×64×64 | 10 |
//!
//! The attack-susceptibility analysis depends on the *model* and its
//! hardware mapping, not on photographic content, so matched shapes,
//! difficulty and baseline accuracy preserve the paper's experimental
//! conditions (see DESIGN.md §2 for the substitution argument).
//!
//! Every generator is a pure function of its [`SyntheticSpec`], so datasets
//! are bit-reproducible across runs and machines.
//!
//! # Example
//!
//! ```
//! use safelight_datasets::{digits, SyntheticSpec};
//! use safelight_neuro::Dataset;
//!
//! # fn main() -> Result<(), safelight_neuro::NeuroError> {
//! let split = digits(&SyntheticSpec { train: 64, test: 16, ..SyntheticSpec::default() })?;
//! assert_eq!(split.train.len(), 64);
//! assert_eq!(split.train.image_shape(), vec![1, 28, 28]);
//! assert_eq!(split.train.classes(), 10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digits;
mod raster;
mod scenes;
mod shapes;
mod spec;

pub use digits::digits;
pub use scenes::textured_scenes;
pub use shapes::tinted_shapes;
pub use spec::{SplitDataset, SyntheticKind, SyntheticSpec};

use safelight_neuro::NeuroError;

/// Generates the stand-in dataset for `kind`.
///
/// # Errors
///
/// Propagates generator errors (e.g. zero-sized splits).
///
/// # Example
///
/// ```
/// use safelight_datasets::{generate, SyntheticKind, SyntheticSpec};
/// use safelight_neuro::Dataset;
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let spec = SyntheticSpec { train: 32, test: 8, ..SyntheticSpec::default() };
/// let split = generate(SyntheticKind::Digits, &spec)?;
/// assert_eq!(split.test.len(), 8);
/// # Ok(())
/// # }
/// ```
pub fn generate(kind: SyntheticKind, spec: &SyntheticSpec) -> Result<SplitDataset, NeuroError> {
    match kind {
        SyntheticKind::Digits => digits(spec),
        SyntheticKind::TintedShapes => tinted_shapes(spec),
        SyntheticKind::TexturedScenes => textured_scenes(spec),
    }
}

//! Imagenette stand-in: larger composed scenes mixing class-specific
//! texture statistics with a foreground object layout.

use safelight_neuro::{InMemoryDataset, NeuroError, SimRng, Tensor};

use crate::raster::Canvas;
use crate::spec::{SplitDataset, SyntheticSpec};

const SIZE: usize = 64;

/// Class-specific procedural texture parameters: spatial frequencies and a
/// hue. Ten classes span distinct (fx, fy, hue) combinations, standing in
/// for Imagenette's ten object categories.
struct SceneClass {
    fx: f32,
    fy: f32,
    hue: (f32, f32, f32),
    objects: usize,
}

/// One row of the class table: `(freq_x, freq_y, tint_rgb, objects)`.
type SceneRow = (f32, f32, (f32, f32, f32), usize);

fn class_params(class: usize) -> SceneClass {
    let table: [SceneRow; 10] = [
        (0.15, 0.02, (0.8, 0.5, 0.3), 1),
        (0.02, 0.15, (0.3, 0.7, 0.4), 1),
        (0.10, 0.10, (0.4, 0.4, 0.8), 2),
        (0.25, 0.05, (0.8, 0.8, 0.3), 2),
        (0.05, 0.25, (0.7, 0.3, 0.7), 3),
        (0.18, 0.18, (0.3, 0.8, 0.8), 3),
        (0.30, 0.12, (0.9, 0.6, 0.5), 4),
        (0.12, 0.30, (0.5, 0.6, 0.9), 4),
        (0.08, 0.08, (0.6, 0.9, 0.6), 5),
        (0.35, 0.35, (0.7, 0.7, 0.7), 5),
    ];
    let (fx, fy, hue, objects) = table[class % 10];
    SceneClass {
        fx,
        fy,
        hue,
        objects,
    }
}

fn render_scene(class: usize, rng: &mut SimRng, spec: &SyntheticSpec) -> Tensor {
    let params = class_params(class);
    let jitter = spec.jitter as f32;
    let phase_x = rng.uniform_in(0.0, std::f64::consts::TAU) as f32;
    let phase_y = rng.uniform_in(0.0, std::f64::consts::TAU) as f32;
    let freq_wobble = 1.0 + jitter * rng.uniform_in(-0.15, 0.15) as f32;

    // Foreground objects: bright disks whose count is class-specific.
    let mut fg = Canvas::new(SIZE, SIZE);
    for _ in 0..params.objects {
        let cx = rng.uniform_in(10.0, (SIZE - 10) as f64) as f32;
        let cy = rng.uniform_in(10.0, (SIZE - 10) as f64) as f32;
        let r = 4.0 + jitter * rng.uniform_in(0.0, 3.0) as f32;
        fg.disk((cx, cy), r, 1.0);
    }

    let (hr, hg, hb) = params.hue;
    let mut data = vec![0.0f32; 3 * SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            let idx = y * SIZE + x;
            // Class texture: product of two sinusoids.
            let tx = (params.fx * freq_wobble * x as f32 * std::f32::consts::TAU + phase_x).sin();
            let ty = (params.fy * freq_wobble * y as f32 * std::f32::consts::TAU + phase_y).sin();
            let texture = 0.35 + 0.25 * tx * ty + 0.1 * (tx + ty);
            let m = fg.pixels[idx];
            let px = |hue: f32| ((texture * hue) * (1.0 - m) + 0.95 * m).clamp(0.0, 1.0);
            data[idx] = px(hr);
            data[SIZE * SIZE + idx] = px(hg);
            data[2 * SIZE * SIZE + idx] = px(hb);
        }
    }
    if spec.noise_std > 0.0 {
        for p in &mut data {
            *p = (*p + rng.gaussian_with(0.0, spec.noise_std) as f32).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(vec![3, SIZE, SIZE], data).expect("canvas size is fixed")
}

fn generate_split(
    count: usize,
    rng: &mut SimRng,
    spec: &SyntheticSpec,
) -> Result<InMemoryDataset, NeuroError> {
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % 10;
        images.push(render_scene(class, rng, spec));
        labels.push(class);
    }
    InMemoryDataset::new(images, labels)
}

/// Generates the Imagenette stand-in: 3×64×64 composed texture scenes,
/// 10 balanced classes.
///
/// # Errors
///
/// Returns [`NeuroError::InvalidDataset`] when either split is empty.
///
/// # Example
///
/// ```
/// use safelight_datasets::{textured_scenes, SyntheticSpec};
/// use safelight_neuro::Dataset;
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let split = textured_scenes(&SyntheticSpec { train: 20, test: 10, ..SyntheticSpec::default() })?;
/// assert_eq!(split.train.image_shape(), vec![3, 64, 64]);
/// # Ok(())
/// # }
/// ```
pub fn textured_scenes(spec: &SyntheticSpec) -> Result<SplitDataset, NeuroError> {
    let mut train_rng = SimRng::seed_from(spec.seed).derive(0x13A6);
    let mut test_rng = SimRng::seed_from(spec.seed).derive(0x13A7);
    Ok(SplitDataset {
        train: generate_split(spec.train, &mut train_rng, spec)?,
        test: generate_split(spec.test, &mut test_rng, spec)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_neuro::Dataset;

    fn spec() -> SyntheticSpec {
        SyntheticSpec {
            train: 20,
            test: 10,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn scenes_are_64_by_64_rgb() {
        let split = textured_scenes(&spec()).unwrap();
        assert_eq!(split.train.image_shape(), vec![3, SIZE, SIZE]);
        assert_eq!(split.train.classes(), 10);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let split = textured_scenes(&spec()).unwrap();
        for i in 0..split.train.len() {
            let (img, _) = split.train.item(i).unwrap();
            assert!(img.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn different_classes_have_different_textures() {
        let clean = SyntheticSpec {
            train: 10,
            test: 10,
            noise_std: 0.0,
            jitter: 0.0,
            seed: 5,
        };
        let split = textured_scenes(&clean).unwrap();
        let (a, _) = split.train.item(0).unwrap();
        let (b, _) = split.train.item(1).unwrap();
        let diff: f32 = a
            .as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .sum::<f32>()
            / a.len() as f32;
        assert!(diff > 0.02, "classes 0 and 1 nearly identical ({diff})");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = textured_scenes(&spec()).unwrap();
        let b = textured_scenes(&spec()).unwrap();
        let (ia, _) = a.train.item(7).unwrap();
        let (ib, _) = b.train.item(7).unwrap();
        assert_eq!(ia.as_slice(), ib.as_slice());
    }
}

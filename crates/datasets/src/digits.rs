//! MNIST stand-in: stroke-rendered digit glyphs with geometric jitter.

use safelight_neuro::{InMemoryDataset, NeuroError, SimRng, Tensor};

use crate::raster::{Affine, Canvas};
use crate::spec::{SplitDataset, SyntheticSpec};

const SIZE: usize = 28;

/// A stroke segment: `(start, end)` points in normalized glyph space.
type Segment = ((f32, f32), (f32, f32));

/// Seven-segment-style endpoints in normalized glyph space for digits 0–9,
/// augmented with diagonals so all ten classes are mutually distinctive.
fn glyph_segments(digit: usize) -> &'static [Segment] {
    // Segment endpoints (x, y) with y growing downward.
    const TOP: Segment = ((0.2, 0.15), (0.8, 0.15));
    const MID: Segment = ((0.2, 0.5), (0.8, 0.5));
    const BOTTOM: Segment = ((0.2, 0.85), (0.8, 0.85));
    const TL: Segment = ((0.2, 0.15), (0.2, 0.5));
    const TR: Segment = ((0.8, 0.15), (0.8, 0.5));
    const BL: Segment = ((0.2, 0.5), (0.2, 0.85));
    const BR: Segment = ((0.8, 0.5), (0.8, 0.85));
    const DIAG: Segment = ((0.8, 0.15), (0.3, 0.85));
    const STEM: Segment = ((0.5, 0.15), (0.5, 0.85));

    match digit {
        0 => &[TOP, BOTTOM, TL, TR, BL, BR],
        1 => &[STEM],
        2 => &[TOP, TR, MID, BL, BOTTOM],
        3 => &[TOP, TR, MID, BR, BOTTOM],
        4 => &[TL, MID, TR, BR],
        5 => &[TOP, TL, MID, BR, BOTTOM],
        6 => &[TOP, TL, MID, BL, BR, BOTTOM],
        7 => &[TOP, DIAG],
        8 => &[TOP, MID, BOTTOM, TL, TR, BL, BR],
        _ => &[TOP, TL, TR, MID, BR, BOTTOM],
    }
}

fn render_digit(digit: usize, rng: &mut SimRng, spec: &SyntheticSpec) -> Tensor {
    let jitter = spec.jitter as f32;
    let transform = Affine {
        scale: 1.0 + jitter * rng.uniform_in(-0.2, 0.2) as f32,
        rotation: jitter * rng.uniform_in(-0.25, 0.25) as f32,
        translate: (
            jitter * rng.uniform_in(-2.5, 2.5) as f32,
            jitter * rng.uniform_in(-2.5, 2.5) as f32,
        ),
    };
    let half_thickness = 1.0 + jitter * rng.uniform_in(-0.3, 0.6) as f32;
    let mut canvas = Canvas::new(SIZE, SIZE);
    for &(a, b) in glyph_segments(digit) {
        let pa = transform.apply(a, SIZE as f32);
        let pb = transform.apply(b, SIZE as f32);
        canvas.line(pa, pb, half_thickness, 1.0);
    }
    let mut pixels = canvas.pixels;
    if spec.noise_std > 0.0 {
        for p in &mut pixels {
            *p = (*p + rng.gaussian_with(0.0, spec.noise_std) as f32).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(vec![1, SIZE, SIZE], pixels).expect("canvas size is fixed")
}

fn generate_split(
    count: usize,
    rng: &mut SimRng,
    spec: &SyntheticSpec,
) -> Result<InMemoryDataset, NeuroError> {
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let digit = i % 10; // balanced classes
        images.push(render_digit(digit, rng, spec));
        labels.push(digit);
    }
    InMemoryDataset::new(images, labels)
}

/// Generates the MNIST stand-in: 1×28×28 glyph images, 10 balanced classes.
///
/// # Errors
///
/// Returns [`NeuroError::InvalidDataset`] when either split is empty.
///
/// # Example
///
/// ```
/// use safelight_datasets::{digits, SyntheticSpec};
/// use safelight_neuro::Dataset;
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let split = digits(&SyntheticSpec { train: 20, test: 10, ..SyntheticSpec::default() })?;
/// let (img, label) = split.train.item(0)?;
/// assert_eq!(img.shape(), &[1, 28, 28]);
/// assert!(label < 10);
/// # Ok(())
/// # }
/// ```
pub fn digits(spec: &SyntheticSpec) -> Result<SplitDataset, NeuroError> {
    let mut train_rng = SimRng::seed_from(spec.seed).derive(0xD161);
    let mut test_rng = SimRng::seed_from(spec.seed).derive(0xD162);
    Ok(SplitDataset {
        train: generate_split(spec.train, &mut train_rng, spec)?,
        test: generate_split(spec.test, &mut test_rng, spec)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_neuro::Dataset;

    fn spec() -> SyntheticSpec {
        SyntheticSpec {
            train: 40,
            test: 20,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn classes_are_balanced() {
        let split = digits(&spec()).unwrap();
        let mut counts = [0usize; 10];
        for i in 0..split.train.len() {
            counts[split.train.item(i).unwrap().1] += 1;
        }
        assert!(counts.iter().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn images_are_normalized_and_non_trivial() {
        let split = digits(&spec()).unwrap();
        for i in 0..10 {
            let (img, _) = split.train.item(i).unwrap();
            assert!(img.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
            // A glyph must light a meaningful number of pixels.
            let lit = img.as_slice().iter().filter(|&&p| p > 0.3).count();
            assert!(lit > 10, "item {i} only lit {lit} pixels");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = digits(&spec()).unwrap();
        let b = digits(&spec()).unwrap();
        let (ia, la) = a.train.item(5).unwrap();
        let (ib, lb) = b.train.item(5).unwrap();
        assert_eq!(la, lb);
        assert_eq!(ia.as_slice(), ib.as_slice());
    }

    #[test]
    fn train_and_test_streams_differ() {
        let split = digits(&spec()).unwrap();
        let (train0, _) = split.train.item(0).unwrap();
        let (test0, _) = split.test.item(0).unwrap();
        assert_ne!(train0.as_slice(), test0.as_slice());
    }

    #[test]
    fn glyphs_of_different_digits_differ() {
        // Render without jitter/noise: class templates must be distinct.
        let clean = SyntheticSpec {
            train: 10,
            test: 10,
            noise_std: 0.0,
            jitter: 0.0,
            seed: 1,
        };
        let split = digits(&clean).unwrap();
        for i in 0..10 {
            for j in (i + 1)..10 {
                let (a, _) = split.train.item(i).unwrap();
                let (b, _) = split.train.item(j).unwrap();
                let diff: f32 = a
                    .as_slice()
                    .iter()
                    .zip(b.as_slice())
                    .map(|(x, y)| (x - y).abs())
                    .sum();
                assert!(diff > 5.0, "digits {i} and {j} are too similar ({diff})");
            }
        }
    }
}

//! CIFAR-10 stand-in: coloured geometric shapes on textured backgrounds.

use safelight_neuro::{InMemoryDataset, NeuroError, SimRng, Tensor};

use crate::raster::Canvas;
use crate::spec::{SplitDataset, SyntheticSpec};

const SIZE: usize = 32;

/// Per-class hue anchor (R, G, B weights); combined with the shape this
/// makes classes separable but, with jitter and noise, not trivially so.
const CLASS_COLOURS: [(f32, f32, f32); 10] = [
    (0.9, 0.2, 0.2),
    (0.2, 0.9, 0.2),
    (0.2, 0.3, 0.9),
    (0.9, 0.8, 0.1),
    (0.8, 0.2, 0.8),
    (0.1, 0.8, 0.8),
    (0.9, 0.5, 0.1),
    (0.5, 0.9, 0.4),
    (0.4, 0.4, 0.9),
    (0.8, 0.8, 0.8),
];

fn draw_class_shape(class: usize, canvas: &mut Canvas, rng: &mut SimRng, jitter: f32) {
    let s = SIZE as f32;
    let cx = s / 2.0 + jitter * rng.uniform_in(-4.0, 4.0) as f32;
    let cy = s / 2.0 + jitter * rng.uniform_in(-4.0, 4.0) as f32;
    let r = s * 0.28 * (1.0 + jitter * rng.uniform_in(-0.2, 0.2) as f32);
    match class % 5 {
        0 => canvas.disk((cx, cy), r, 1.0),
        1 => canvas.rect((cx - r, cy - r), (cx + r, cy + r), 1.0),
        2 => {
            // Triangle drawn as three thick edges.
            let top = (cx, cy - r);
            let left = (cx - r, cy + r * 0.8);
            let right = (cx + r, cy + r * 0.8);
            canvas.line(top, left, 1.5, 1.0);
            canvas.line(left, right, 1.5, 1.0);
            canvas.line(right, top, 1.5, 1.0);
        }
        3 => canvas.ring((cx, cy), r, 1.5, 1.0),
        _ => {
            // Cross.
            canvas.line((cx - r, cy), (cx + r, cy), 2.0, 1.0);
            canvas.line((cx, cy - r), (cx, cy + r), 2.0, 1.0);
        }
    }
}

fn render_shape(class: usize, rng: &mut SimRng, spec: &SyntheticSpec) -> Tensor {
    let jitter = spec.jitter as f32;
    let mut mask = Canvas::new(SIZE, SIZE);
    draw_class_shape(class, &mut mask, rng, jitter);

    let (cr, cg, cb) = CLASS_COLOURS[class % 10];
    // Slight per-sample colour wobble keeps colour from being a pure lookup.
    let wobble = |c: f32, rng: &mut SimRng| {
        (c + jitter as f64 as f32 * rng.uniform_in(-0.15, 0.15) as f32).clamp(0.0, 1.0)
    };
    let (cr, cg, cb) = (wobble(cr, rng), wobble(cg, rng), wobble(cb, rng));

    // Textured background: low-frequency gradient plus noise.
    let (gx, gy) = (
        rng.uniform_in(-0.3, 0.3) as f32,
        rng.uniform_in(-0.3, 0.3) as f32,
    );
    let base = rng.uniform_in(0.1, 0.3) as f32;

    let mut data = vec![0.0f32; 3 * SIZE * SIZE];
    for y in 0..SIZE {
        for x in 0..SIZE {
            let idx = y * SIZE + x;
            let bg = base + gx * x as f32 / SIZE as f32 + gy * y as f32 / SIZE as f32;
            let m = mask.pixels[idx];
            let px = |chan: f32| (bg * (1.0 - m) + chan * m).clamp(0.0, 1.0);
            data[idx] = px(cr);
            data[SIZE * SIZE + idx] = px(cg);
            data[2 * SIZE * SIZE + idx] = px(cb);
        }
    }
    if spec.noise_std > 0.0 {
        for p in &mut data {
            *p = (*p + rng.gaussian_with(0.0, spec.noise_std) as f32).clamp(0.0, 1.0);
        }
    }
    Tensor::from_vec(vec![3, SIZE, SIZE], data).expect("canvas size is fixed")
}

fn generate_split(
    count: usize,
    rng: &mut SimRng,
    spec: &SyntheticSpec,
) -> Result<InMemoryDataset, NeuroError> {
    let mut images = Vec::with_capacity(count);
    let mut labels = Vec::with_capacity(count);
    for i in 0..count {
        let class = i % 10;
        images.push(render_shape(class, rng, spec));
        labels.push(class);
    }
    InMemoryDataset::new(images, labels)
}

/// Generates the CIFAR-10 stand-in: 3×32×32 coloured-shape images, 10
/// balanced classes distinguished by (shape, colour) pairs.
///
/// # Errors
///
/// Returns [`NeuroError::InvalidDataset`] when either split is empty.
///
/// # Example
///
/// ```
/// use safelight_datasets::{tinted_shapes, SyntheticSpec};
/// use safelight_neuro::Dataset;
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let split = tinted_shapes(&SyntheticSpec { train: 20, test: 10, ..SyntheticSpec::default() })?;
/// assert_eq!(split.train.image_shape(), vec![3, 32, 32]);
/// # Ok(())
/// # }
/// ```
pub fn tinted_shapes(spec: &SyntheticSpec) -> Result<SplitDataset, NeuroError> {
    let mut train_rng = SimRng::seed_from(spec.seed).derive(0xC1FA);
    let mut test_rng = SimRng::seed_from(spec.seed).derive(0xC1FB);
    Ok(SplitDataset {
        train: generate_split(spec.train, &mut train_rng, spec)?,
        test: generate_split(spec.test, &mut test_rng, spec)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use safelight_neuro::Dataset;

    fn spec() -> SyntheticSpec {
        SyntheticSpec {
            train: 30,
            test: 10,
            ..SyntheticSpec::default()
        }
    }

    #[test]
    fn shapes_have_three_channels() {
        let split = tinted_shapes(&spec()).unwrap();
        assert_eq!(split.train.image_shape(), vec![3, SIZE, SIZE]);
        assert_eq!(split.train.classes(), 10);
    }

    #[test]
    fn pixels_stay_in_unit_range() {
        let split = tinted_shapes(&spec()).unwrap();
        for i in 0..split.train.len() {
            let (img, _) = split.train.item(i).unwrap();
            assert!(img.as_slice().iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn classes_are_colour_separated_on_average() {
        // Mean red-channel of class 0 (red) must exceed class 2 (blue).
        let clean = SyntheticSpec {
            train: 40,
            test: 10,
            noise_std: 0.0,
            jitter: 0.2,
            seed: 3,
        };
        let split = tinted_shapes(&clean).unwrap();
        let mean_red = |class: usize| -> f32 {
            let mut sum = 0.0;
            let mut n = 0;
            for i in 0..split.train.len() {
                let (img, label) = split.train.item(i).unwrap();
                if label == class {
                    sum += img.as_slice()[..SIZE * SIZE].iter().sum::<f32>();
                    n += 1;
                }
            }
            sum / n as f32
        };
        assert!(mean_red(0) > mean_red(2));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tinted_shapes(&spec()).unwrap();
        let b = tinted_shapes(&spec()).unwrap();
        let (ia, _) = a.test.item(3).unwrap();
        let (ib, _) = b.test.item(3).unwrap();
        assert_eq!(ia.as_slice(), ib.as_slice());
    }
}

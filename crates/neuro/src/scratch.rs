//! Thread-local scratch-buffer arena.
//!
//! The hot paths (GEMM packing panels, conv's im2col/col2im buffers) need
//! large temporary `f32` buffers on every call. Allocating them fresh per
//! call costs a page-zeroing `memset` and allocator traffic per sample;
//! this arena instead keeps one buffer per [`Slot`] per thread and hands it
//! out on demand, so a training epoch or attack sweep reuses the same
//! allocations across every batch item processed by a given worker.
//!
//! The arena uses *take/put* semantics rather than scoped borrows: a
//! re-entrant request for a slot that is currently checked out (possible
//! when a pool thread helps run another task while blocked — see
//! [`crate::parallel`]) simply allocates a fresh buffer instead of
//! panicking, and the larger of the two is kept on return.

use std::cell::RefCell;

/// Named scratch buffers; one live buffer per slot per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// GEMM packed A panel.
    PackA,
    /// GEMM packed B panel.
    PackB,
    /// Conv im2col patch buffer.
    Col,
    /// Conv backward column-gradient buffer.
    GradCol,
    /// Conv forward block-GEMM output staging buffer.
    OutBlock,
    /// Conv backward gathered-`dY` staging buffer.
    YBlock,
}

const SLOTS: usize = 6;

thread_local! {
    static ARENA: RefCell<[Option<Vec<f32>>; SLOTS]> =
        const { RefCell::new([None, None, None, None, None, None]) };
}

fn take(slot: Slot) -> Vec<f32> {
    ARENA
        .with(|arena| arena.borrow_mut()[slot as usize].take())
        .unwrap_or_default()
}

fn put(slot: Slot, buffer: Vec<f32>) {
    ARENA.with(|arena| {
        let cell = &mut arena.borrow_mut()[slot as usize];
        let keep = match cell.as_ref() {
            Some(existing) => existing.capacity() < buffer.capacity(),
            None => true,
        };
        if keep {
            *cell = Some(buffer);
        }
    });
}

/// Runs `f` with the thread's buffer for `slot`.
///
/// The buffer arrives with whatever length/contents the previous user left;
/// callers must `clear`/`resize` it themselves. It returns to the arena
/// afterwards (even if `f` panics the buffer is merely dropped, never
/// corrupted).
pub(crate) fn with_buffer<R>(slot: Slot, f: impl FnOnce(&mut Vec<f32>) -> R) -> R {
    let mut buffer = take(slot);
    let result = f(&mut buffer);
    put(slot, buffer);
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_capacity_is_reused_across_calls() {
        let first_ptr = with_buffer(Slot::Col, |b| {
            b.clear();
            b.resize(4096, 0.0);
            b.as_ptr() as usize
        });
        let second_ptr = with_buffer(Slot::Col, |b| {
            assert!(b.capacity() >= 4096, "arena dropped the buffer");
            b.as_ptr() as usize
        });
        assert_eq!(first_ptr, second_ptr);
    }

    #[test]
    fn reentrant_take_falls_back_to_fresh_allocation() {
        with_buffer(Slot::PackA, |outer| {
            outer.resize(16, 1.0);
            // Same slot requested while checked out: must not panic.
            with_buffer(Slot::PackA, |inner| {
                assert!(inner.is_empty() || inner.as_ptr() != outer.as_ptr());
                inner.resize(32, 2.0);
            });
            assert_eq!(outer.len(), 16);
        });
        // The larger inner buffer was kept.
        with_buffer(Slot::PackA, |b| assert!(b.capacity() >= 32));
    }

    #[test]
    fn slots_are_independent() {
        with_buffer(Slot::PackB, |a| {
            a.clear();
            a.resize(8, 3.0);
            with_buffer(Slot::GradCol, |b| {
                b.clear();
                b.resize(8, 4.0);
                assert_ne!(a.as_ptr(), b.as_ptr());
            });
        });
    }
}

//! Thread-local scratch-buffer arena.
//!
//! The hot paths (GEMM packing panels, conv's im2col/col2im buffers, the
//! FFT convolution's spectra, the integer datapath's code buffers) need
//! large temporary buffers on every call. Allocating them fresh per call
//! costs a page-zeroing `memset` and allocator traffic per sample; this
//! arena instead keeps one buffer per slot per thread and hands it out on
//! demand, so a training epoch or attack sweep reuses the same
//! allocations across every batch item processed by a given worker.
//!
//! The arena uses *take/put* semantics rather than scoped borrows: a
//! re-entrant request for a slot that is currently checked out (possible
//! when a pool thread helps run another task while blocked — see
//! [`crate::parallel`]) simply allocates a fresh buffer instead of
//! panicking, and the larger of the two is kept on return.
//!
//! Buffers come in three element types — `f32` ([`Slot`]), `i16`
//! ([`SlotI16`]) and `i32` ([`SlotI32`]) — each with its own independent
//! per-thread arena.

use std::cell::RefCell;

/// Named `f32` scratch buffers; one live buffer per slot per thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Slot {
    /// GEMM packed A panel.
    PackA,
    /// GEMM packed B panel.
    PackB,
    /// Conv im2col patch buffer.
    Col,
    /// Conv backward column-gradient buffer.
    GradCol,
    /// Conv forward block-GEMM output staging buffer.
    OutBlock,
    /// Conv backward gathered-`dY` staging buffer.
    YBlock,
    /// FFT conv: padded input-tile spectrum workspace.
    FftImage,
    /// FFT conv: accumulated output-tile spectrum / inverse staging.
    FftStage,
}

/// Named `i16` scratch buffers for the integer datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotI16 {
    /// Quantized activation codes (whole input tensor or batch rows).
    Act,
    /// Quantized weight codes.
    Weight,
    /// Transposed im2col patch codes (`[ncols][kdim]`).
    Col,
}

/// Named `i32` scratch buffers for the integer datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SlotI32 {
    /// Integer GEMM accumulator block.
    Acc,
}

macro_rules! typed_arena {
    ($arena:ident, $ty:ty, $slot:ty, $count:expr, $with:ident) => {
        thread_local! {
            static $arena: RefCell<[Option<Vec<$ty>>; $count]> =
                const { RefCell::new([const { None }; $count]) };
        }

        /// Runs `f` with the thread's buffer for `slot`.
        ///
        /// The buffer arrives with whatever length/contents the previous
        /// user left; callers must `clear`/`resize` it themselves. It
        /// returns to the arena afterwards (if `f` panics the buffer is
        /// merely dropped, never corrupted).
        pub(crate) fn $with<R>(slot: $slot, f: impl FnOnce(&mut Vec<$ty>) -> R) -> R {
            let mut buffer = $arena
                .with(|arena| arena.borrow_mut()[slot as usize].take())
                .unwrap_or_default();
            let result = f(&mut buffer);
            $arena.with(|arena| {
                let cell = &mut arena.borrow_mut()[slot as usize];
                let keep = match cell.as_ref() {
                    Some(existing) => existing.capacity() < buffer.capacity(),
                    None => true,
                };
                if keep {
                    *cell = Some(buffer);
                }
            });
            result
        }
    };
}

typed_arena!(ARENA, f32, Slot, 8, with_buffer);
typed_arena!(ARENA_I16, i16, SlotI16, 3, with_buffer_i16);
typed_arena!(ARENA_I32, i32, SlotI32, 1, with_buffer_i32);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_capacity_is_reused_across_calls() {
        let first_ptr = with_buffer(Slot::Col, |b| {
            b.clear();
            b.resize(4096, 0.0);
            b.as_ptr() as usize
        });
        let second_ptr = with_buffer(Slot::Col, |b| {
            assert!(b.capacity() >= 4096, "arena dropped the buffer");
            b.as_ptr() as usize
        });
        assert_eq!(first_ptr, second_ptr);
    }

    #[test]
    fn reentrant_take_falls_back_to_fresh_allocation() {
        with_buffer(Slot::PackA, |outer| {
            outer.resize(16, 1.0);
            // Same slot requested while checked out: must not panic.
            with_buffer(Slot::PackA, |inner| {
                assert!(inner.is_empty() || inner.as_ptr() != outer.as_ptr());
                inner.resize(32, 2.0);
            });
            assert_eq!(outer.len(), 16);
        });
        // The larger inner buffer was kept.
        with_buffer(Slot::PackA, |b| assert!(b.capacity() >= 32));
    }

    #[test]
    fn slots_are_independent() {
        with_buffer(Slot::PackB, |a| {
            a.clear();
            a.resize(8, 3.0);
            with_buffer(Slot::GradCol, |b| {
                b.clear();
                b.resize(8, 4.0);
                assert_ne!(a.as_ptr(), b.as_ptr());
            });
        });
    }

    #[test]
    fn typed_arenas_are_independent() {
        with_buffer_i16(SlotI16::Act, |a| {
            a.clear();
            a.resize(16, 7);
            with_buffer_i32(SlotI32::Acc, |b| {
                b.clear();
                b.resize(16, -3);
                assert_eq!(a[0], 7);
                assert_eq!(b[0], -3);
            });
        });
        // Capacity survives, per type.
        with_buffer_i16(SlotI16::Act, |a| assert!(a.capacity() >= 16));
        with_buffer_i32(SlotI32::Acc, |b| assert!(b.capacity() >= 16));
    }
}

//! Optimizers. SGD with momentum and decoupled L2 weight decay — the
//! regularizer at the heart of the paper's first mitigation technique.

use crate::layers::Param;
use crate::{NeuroError, Tensor};

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub learning_rate: f32,
    /// Momentum coefficient (0 disables momentum).
    pub momentum: f32,
    /// L2 regularization strength λ. The paper's §V.A penalty
    /// `R(w) = λ/(2m)·Σ‖w‖²` enters gradient descent as `λ·w`, which is
    /// exactly this weight-decay term. Applied only to parameters flagged
    /// [`Param::decay`] (weights, not biases or batch-norm affines).
    pub weight_decay: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
        }
    }
}

/// Stochastic gradient descent with momentum and L2 weight decay.
///
/// The optimizer keeps momentum buffers indexed by parameter position, so
/// it must always be stepped with the same network.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Linear, Network, Sgd, SgdConfig, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut net = Network::new();
/// net.push(Linear::new(2, 2, 1)?);
/// let mut sgd = Sgd::new(SgdConfig::default());
///
/// let x = Tensor::full(vec![1, 2], 1.0);
/// net.forward(&x, true)?;
/// net.backward(&Tensor::full(vec![1, 2], 1.0))?;
/// sgd.step(&mut net.params_mut())?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an optimizer with the given configuration.
    #[must_use]
    pub fn new(config: SgdConfig) -> Self {
        Self {
            config,
            velocity: Vec::new(),
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Updates the learning rate (for schedules).
    pub fn set_learning_rate(&mut self, lr: f32) {
        self.config.learning_rate = lr;
    }

    /// Applies one update step to `params` using their accumulated
    /// gradients, then leaves the gradients untouched (callers usually
    /// `zero_grad` right after).
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] when the parameter list changes
    /// shape between steps.
    pub fn step(&mut self, params: &mut [&mut Param]) -> Result<(), NeuroError> {
        if self.velocity.is_empty() {
            self.velocity = params
                .iter()
                .map(|p| Tensor::zeros(p.value.shape().to_vec()))
                .collect();
        }
        if self.velocity.len() != params.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "Sgd::step: parameter count changed",
                expected: vec![self.velocity.len()],
                actual: vec![params.len()],
            });
        }
        let lr = self.config.learning_rate;
        let mu = self.config.momentum;
        let wd = self.config.weight_decay;
        for (param, vel) in params.iter_mut().zip(&mut self.velocity) {
            if vel.shape() != param.value.shape() {
                return Err(NeuroError::ShapeMismatch {
                    context: "Sgd::step: parameter shape changed",
                    expected: vel.shape().to_vec(),
                    actual: param.value.shape().to_vec(),
                });
            }
            let decay = if param.decay { wd } else { 0.0 };
            let v = vel.as_mut_slice();
            let w = param.value.as_mut_slice();
            let g = param.grad.as_slice();
            for i in 0..w.len() {
                let grad = g[i] + decay * w[i];
                v[i] = mu * v[i] + grad;
                w[i] -= lr * v[i];
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn param_with_grad(value: f32, grad: f32, decay: bool) -> Param {
        let mut p = Param::new(Tensor::full(vec![1], value), decay);
        p.grad.fill(grad);
        p
    }

    #[test]
    fn plain_sgd_moves_against_gradient() {
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 0.0,
        });
        let mut p = param_with_grad(1.0, 2.0, true);
        sgd.step(&mut [&mut p]).unwrap();
        assert!((p.value.as_slice()[0] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn momentum_accelerates_repeated_steps() {
        let cfg = SgdConfig {
            learning_rate: 0.1,
            momentum: 0.9,
            weight_decay: 0.0,
        };
        let mut sgd = Sgd::new(cfg);
        let mut p = param_with_grad(0.0, 1.0, true);
        sgd.step(&mut [&mut p]).unwrap();
        let first_step = -p.value.as_slice()[0];
        p.grad.fill(1.0);
        sgd.step(&mut [&mut p]).unwrap();
        let second_step = -p.value.as_slice()[0] - first_step;
        assert!(second_step > first_step, "{second_step} vs {first_step}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        let mut p = param_with_grad(1.0, 0.0, true);
        sgd.step(&mut [&mut p]).unwrap();
        assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn weight_decay_skips_undecayed_params() {
        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: 0.1,
            momentum: 0.0,
            weight_decay: 0.5,
        });
        let mut p = param_with_grad(1.0, 0.0, false);
        sgd.step(&mut [&mut p]).unwrap();
        assert_eq!(p.value.as_slice()[0], 1.0);
    }

    #[test]
    fn changing_parameter_count_is_detected() {
        let mut sgd = Sgd::new(SgdConfig::default());
        let mut a = param_with_grad(1.0, 1.0, true);
        sgd.step(&mut [&mut a]).unwrap();
        let mut b = param_with_grad(1.0, 1.0, true);
        assert!(sgd.step(&mut [&mut a, &mut b]).is_err());
    }
}

//! Deterministic random-number generation for simulation and training.

/// The xoshiro256++ core behind [`SimRng`].
///
/// The workspace has no registry access, so instead of depending on the
/// `rand` crate this module carries its own small, well-studied generator
/// (Blackman & Vigna's xoshiro256++ seeded through SplitMix64). Only
/// statistical quality and per-seed determinism matter here; no test pins
/// exact draw values.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Stream-selection constant folded into every seed. The generator
    /// family is arbitrary, so this just pins the reproduction's published
    /// figures to one concrete stream; it was re-rolled once when the
    /// in-tree xoshiro core replaced the external `rand` dependency.
    const STREAM: u64 = 0x5AFE_1147;

    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit state,
        // the seeding scheme the xoshiro authors recommend.
        let mut x = seed ^ Self::STREAM;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, n)` by widening multiply (Lemire's method,
    /// without the rejection step — bias is < 2⁻⁵³ for the index ranges the
    /// simulator uses and the method is branch-free and deterministic).
    fn bounded(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A seeded random-number generator with the distributions the simulator
/// needs (uniform, Gaussian via Box–Muller, index sampling, shuffling).
///
/// Every stochastic component of the reproduction — weight initialization,
/// batch shuffling, noise-aware training, attack-site sampling — draws from
/// a `SimRng` seeded from the experiment configuration, so every figure is
/// bit-reproducible.
///
/// # Example
///
/// ```
/// use safelight_neuro::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
    /// Cached second output of the Box–Muller transform.
    spare_gaussian: Option<f64>,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: Xoshiro256pp::seed_from_u64(seed),
            spare_gaussian: None,
        }
    }

    /// Derives an independent generator for a sub-task, keyed by `stream`.
    ///
    /// Streams derived with different keys are statistically independent,
    /// which lets parallel workers (threads, attack trials) share one
    /// experiment seed without correlating.
    #[must_use]
    pub fn derive(&self, stream: u64) -> Self {
        // SplitMix-style remix of the parent seed with the stream key.
        let mut z = stream.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut clone = self.clone();
        let base: u64 = clone.inner.next_u64();
        Self::seed_from(base ^ z ^ (z >> 31))
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// A uniform sample in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// A standard Gaussian sample (Box–Muller; `rand_distr` is deliberately
    /// not a dependency).
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.spare_gaussian.take() {
            return z;
        }
        // Box–Muller on two uniforms; u1 bounded away from 0.
        let u1 = self.uniform().max(1e-300);
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_gaussian = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A Gaussian sample with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// A uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics when `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot sample an index from an empty range");
        self.inner.bounded(n as u64) as usize
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.inner.bounded(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (k ≤ n), in random order.
    ///
    /// Uses a partial Fisher–Yates, so it is O(n) memory but O(k) swaps —
    /// fine for the attack-site sampling this crate family performs.
    ///
    /// # Panics
    ///
    /// Panics when `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = i + self.inner.bounded((n - i) as u64) as usize;
            pool.swap(i, j);
        }
        pool.truncate(k);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn different_streams_diverge() {
        let root = SimRng::seed_from(7);
        let mut a = root.derive(1);
        let mut b = root.derive(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 2);
    }

    #[test]
    fn gaussian_moments_are_sane() {
        let mut rng = SimRng::seed_from(123);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn gaussian_with_scales_and_shifts() {
        let mut rng = SimRng::seed_from(5);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian_with(3.0, 0.5)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = SimRng::seed_from(11);
        let picks = rng.sample_distinct(100, 40);
        assert_eq!(picks.len(), 40);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_distinct_full_range_is_permutation() {
        let mut rng = SimRng::seed_from(11);
        let mut picks = rng.sample_distinct(16, 16);
        picks.sort_unstable();
        assert_eq!(picks, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_preserves_elements() {
        let mut rng = SimRng::seed_from(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_of_empty_range_panics() {
        SimRng::seed_from(0).index(0);
    }
}

//! In-tree radix-2 FFT for the frequency-domain convolution path.
//!
//! Convolution by pointwise spectrum multiplication needs only modest
//! machinery: a power-of-two complex FFT plus the classic *two-for-one*
//! real-transform trick (two real rows packed into one complex transform
//! and untangled by Hermitian symmetry — and, on the way back, two real
//! rows recovered from one inverse transform). The 2-D transforms are
//! built row-by-row then column-by-column from the 1-D kernel.
//!
//! Everything here is allocation-light and deterministic: twiddle factors
//! are computed once per [`Fft`] plan in `f64` and rounded to `f32`, the
//! transforms are plain iterative decimation-in-time loops, and no result
//! depends on thread count. The convolution layer
//! (`crate::layers::Conv2d`) drives these kernels through the thread-local
//! scratch arena; this module owns only the math.
//!
//! Complex data is stored interleaved: `buf[2*i]` is the real part of
//! element `i`, `buf[2*i + 1]` the imaginary part.

/// A radix-2 FFT plan: size, bit-reversal permutation and twiddle table.
#[derive(Debug, Clone)]
pub struct Fft {
    n: usize,
    /// Bit-reversal target index per position.
    rev: Vec<u32>,
    /// Forward twiddles `exp(-2πi·j/n)` for `j < n/2`, interleaved re/im.
    twiddles: Vec<f32>,
}

impl Fft {
    /// Builds a plan for transform size `n`.
    ///
    /// # Panics
    ///
    /// Panics unless `n` is a power of two and at least 2.
    #[must_use]
    pub fn new(n: usize) -> Self {
        assert!(
            n >= 2 && n.is_power_of_two(),
            "FFT size must be a power of two >= 2"
        );
        let bits = n.trailing_zeros();
        let rev = (0..n as u32)
            .map(|i| i.reverse_bits() >> (32 - bits))
            .collect();
        let mut twiddles = Vec::with_capacity(n);
        for j in 0..n / 2 {
            let angle = -2.0 * std::f64::consts::PI * j as f64 / n as f64;
            twiddles.push(angle.cos() as f32);
            twiddles.push(angle.sin() as f32);
        }
        Self { n, rev, twiddles }
    }

    /// Transform size.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — plans of size < 2 cannot be constructed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// In-place forward transform of `n` interleaved complex values.
    ///
    /// # Panics
    ///
    /// Panics when `buf.len() != 2 * n`.
    pub fn forward(&self, buf: &mut [f32]) {
        self.transform(buf, false);
    }

    /// In-place inverse transform (including the `1/n` normalization).
    ///
    /// # Panics
    ///
    /// Panics when `buf.len() != 2 * n`.
    pub fn inverse(&self, buf: &mut [f32]) {
        self.transform(buf, true);
        let scale = 1.0 / self.n as f32;
        for v in buf.iter_mut() {
            *v *= scale;
        }
    }

    fn transform(&self, buf: &mut [f32], invert: bool) {
        let n = self.n;
        assert_eq!(
            buf.len(),
            2 * n,
            "complex buffer must hold n interleaved values"
        );
        // Bit-reversal permutation (swap once per pair).
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                buf.swap(2 * i, 2 * j);
                buf.swap(2 * i + 1, 2 * j + 1);
            }
        }
        // Iterative DIT butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let step = n / len;
            for base in (0..n).step_by(len) {
                for j in 0..half {
                    let (wr, wi0) = {
                        let t = 2 * j * step;
                        (self.twiddles[t], self.twiddles[t + 1])
                    };
                    let wi = if invert { -wi0 } else { wi0 };
                    let p = 2 * (base + j);
                    let q = 2 * (base + j + half);
                    let (ar, ai) = (buf[p], buf[p + 1]);
                    let (br, bi) = (buf[q], buf[q + 1]);
                    let tr = br * wr - bi * wi;
                    let ti = br * wi + bi * wr;
                    buf[p] = ar + tr;
                    buf[p + 1] = ai + ti;
                    buf[q] = ar - tr;
                    buf[q + 1] = ai - ti;
                }
            }
            len *= 2;
        }
    }
}

/// Forward 2-D transform of an `n×n` real tile into `n×n` interleaved
/// complex spectrum (row-major). Rows are transformed two at a time via
/// the two-for-one real trick, then columns as plain complex transforms.
///
/// `scratch` must hold at least `4*n` floats (two complex rows / one
/// complex column working set).
///
/// # Panics
///
/// Panics when buffer sizes do not match the plan size.
pub fn fft2_forward_real(plan: &Fft, src: &[f32], dst: &mut [f32], scratch: &mut [f32]) {
    let n = plan.len();
    assert_eq!(src.len(), n * n);
    assert_eq!(dst.len(), 2 * n * n);
    assert!(scratch.len() >= 4 * n);
    let (z, rest) = scratch.split_at_mut(2 * n);
    // Rows, two real rows per complex transform.
    for r in (0..n).step_by(2) {
        let row0 = &src[r * n..(r + 1) * n];
        let row1 = &src[(r + 1) * n..(r + 2) * n];
        for i in 0..n {
            z[2 * i] = row0[i];
            z[2 * i + 1] = row1[i];
        }
        plan.forward(z);
        // Untangle: X0[k] = (Z[k] + conj(Z[-k]))/2, X1[k] = -i(Z[k] - conj(Z[-k]))/2.
        for k in 0..n {
            let km = (n - k) % n;
            let (zr, zi) = (z[2 * k], z[2 * k + 1]);
            let (mr, mi) = (z[2 * km], -z[2 * km + 1]);
            let x0r = 0.5 * (zr + mr);
            let x0i = 0.5 * (zi + mi);
            let x1r = 0.5 * (zi - mi);
            let x1i = -0.5 * (zr - mr);
            dst[2 * (r * n + k)] = x0r;
            dst[2 * (r * n + k) + 1] = x0i;
            dst[2 * ((r + 1) * n + k)] = x1r;
            dst[2 * ((r + 1) * n + k) + 1] = x1i;
        }
    }
    // Columns, plain complex transforms through a contiguous staging row.
    let col = &mut rest[..2 * n];
    for c in 0..n {
        for r in 0..n {
            col[2 * r] = dst[2 * (r * n + c)];
            col[2 * r + 1] = dst[2 * (r * n + c) + 1];
        }
        plan.forward(col);
        for r in 0..n {
            dst[2 * (r * n + c)] = col[2 * r];
            dst[2 * (r * n + c) + 1] = col[2 * r + 1];
        }
    }
}

/// Inverse 2-D transform of an `n×n` complex spectrum (consumed in place)
/// into an `n×n` real tile. The spectrum must be Hermitian — i.e. come
/// from real data through forward transforms and pointwise products of
/// such spectra — so that pairs of rows can be recovered from single
/// inverse transforms.
///
/// `scratch` must hold at least `4*n` floats.
///
/// # Panics
///
/// Panics when buffer sizes do not match the plan size.
pub fn fft2_inverse_real(plan: &Fft, spectrum: &mut [f32], dst: &mut [f32], scratch: &mut [f32]) {
    let n = plan.len();
    assert_eq!(spectrum.len(), 2 * n * n);
    assert_eq!(dst.len(), n * n);
    assert!(scratch.len() >= 4 * n);
    let (col, rest) = scratch.split_at_mut(2 * n);
    // Columns first (undo the forward order).
    for c in 0..n {
        for r in 0..n {
            col[2 * r] = spectrum[2 * (r * n + c)];
            col[2 * r + 1] = spectrum[2 * (r * n + c) + 1];
        }
        plan.inverse(col);
        for r in 0..n {
            spectrum[2 * (r * n + c)] = col[2 * r];
            spectrum[2 * (r * n + c) + 1] = col[2 * r + 1];
        }
    }
    // Rows: pack two Hermitian row spectra into one inverse transform;
    // the real/imag parts of the result are the two real rows.
    let w = &mut rest[..2 * n];
    for r in (0..n).step_by(2) {
        for k in 0..n {
            let (y0r, y0i) = (spectrum[2 * (r * n + k)], spectrum[2 * (r * n + k) + 1]);
            let (y1r, y1i) = (
                spectrum[2 * ((r + 1) * n + k)],
                spectrum[2 * ((r + 1) * n + k) + 1],
            );
            w[2 * k] = y0r - y1i;
            w[2 * k + 1] = y0i + y1r;
        }
        plan.inverse(w);
        for i in 0..n {
            dst[r * n + i] = w[2 * i];
            dst[(r + 1) * n + i] = w[2 * i + 1];
        }
    }
}

/// `acc += x · h` over interleaved complex spectra (pointwise complex
/// multiply-accumulate) — the per-channel-pair inner loop of the
/// frequency-domain convolution.
///
/// # Panics
///
/// Panics when the three buffers differ in length or have odd length.
pub fn spectrum_mul_acc(acc: &mut [f32], x: &[f32], h: &[f32]) {
    assert_eq!(acc.len(), x.len());
    assert_eq!(acc.len(), h.len());
    assert_eq!(acc.len() % 2, 0);
    for ((a, xv), hv) in acc
        .chunks_exact_mut(2)
        .zip(x.chunks_exact(2))
        .zip(h.chunks_exact(2))
    {
        a[0] += xv[0] * hv[0] - xv[1] * hv[1];
        a[1] += xv[0] * hv[1] + xv[1] * hv[0];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(input: &[f32]) -> Vec<(f64, f64)> {
        let n = input.len() / 2;
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (j, c) in input.chunks_exact(2).enumerate() {
                    let angle = -2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
                    let (s, cs) = angle.sin_cos();
                    re += f64::from(c[0]) * cs - f64::from(c[1]) * s;
                    im += f64::from(c[0]) * s + f64::from(c[1]) * cs;
                }
                (re, im)
            })
            .collect()
    }

    fn signal(n: usize, salt: f32) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32 * 0.91 + salt).sin()) * 0.8)
            .collect()
    }

    #[test]
    fn forward_matches_naive_dft() {
        for n in [2usize, 4, 8, 32] {
            let plan = Fft::new(n);
            let mut buf = signal(2 * n, 1.5);
            let expected = naive_dft(&buf);
            plan.forward(&mut buf);
            for (k, &(er, ei)) in expected.iter().enumerate() {
                assert!(
                    (f64::from(buf[2 * k]) - er).abs() < 1e-3 * n as f64,
                    "n={n} k={k} re {} vs {er}",
                    buf[2 * k]
                );
                assert!((f64::from(buf[2 * k + 1]) - ei).abs() < 1e-3 * n as f64);
            }
        }
    }

    #[test]
    fn inverse_round_trips() {
        for n in [4usize, 16, 64] {
            let plan = Fft::new(n);
            let original = signal(2 * n, 2.5);
            let mut buf = original.clone();
            plan.forward(&mut buf);
            plan.inverse(&mut buf);
            for (a, b) in buf.iter().zip(&original) {
                assert!((a - b).abs() < 1e-4, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn real_2d_round_trips() {
        for n in [4usize, 8, 16] {
            let plan = Fft::new(n);
            let tile = signal(n * n, 3.5);
            let mut spec = vec![0.0; 2 * n * n];
            let mut scratch = vec![0.0; 4 * n];
            fft2_forward_real(&plan, &tile, &mut spec, &mut scratch);
            let mut back = vec![0.0; n * n];
            fft2_inverse_real(&plan, &mut spec, &mut back, &mut scratch);
            for (a, b) in back.iter().zip(&tile) {
                assert!((a - b).abs() < 1e-4, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn spectrum_product_is_circular_convolution() {
        // Circular conv of x and h via spectra must match the direct sum.
        let n = 8usize;
        let plan = Fft::new(n);
        let x = signal(n * n, 4.0);
        let h: Vec<f32> = (0..n * n)
            .map(|i| if i < 9 { (i as f32 - 4.0) * 0.1 } else { 0.0 })
            .collect();
        let mut xs = vec![0.0; 2 * n * n];
        let mut hs = vec![0.0; 2 * n * n];
        let mut scratch = vec![0.0; 4 * n];
        fft2_forward_real(&plan, &x, &mut xs, &mut scratch);
        fft2_forward_real(&plan, &h, &mut hs, &mut scratch);
        let mut prod = vec![0.0; 2 * n * n];
        spectrum_mul_acc(&mut prod, &xs, &hs);
        let mut got = vec![0.0; n * n];
        fft2_inverse_real(&plan, &mut prod, &mut got, &mut scratch);
        for r in 0..n {
            for c in 0..n {
                let mut want = 0.0f64;
                for u in 0..n {
                    for v in 0..n {
                        want += f64::from(x[u * n + v])
                            * f64::from(h[((r + n - u) % n) * n + ((c + n - v) % n)]);
                    }
                }
                let gotv = f64::from(got[r * n + c]);
                assert!((gotv - want).abs() < 1e-3, "({r},{c}): {gotv} vs {want}");
            }
        }
    }
}

//! Batch normalization for convolutional feature maps.

use crate::layers::{Layer, Param};
use crate::{NeuroError, Tensor};

/// Per-channel batch normalization over `[N, C, H, W]` batches.
///
/// Training uses batch statistics and updates exponential running averages;
/// inference uses the running statistics — so a network behaves
/// deterministically at attack-evaluation time.
///
/// # Example
///
/// ```
/// use safelight_neuro::{BatchNorm2d, Layer, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut bn = BatchNorm2d::new(3)?;
/// let y = bn.forward(&Tensor::zeros(vec![2, 3, 4, 4]), true)?;
/// assert_eq!(y.shape(), &[2, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    channels: usize,
    eps: f32,
    momentum: f32,
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    normalized: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer over `channels` feature maps.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when `channels == 0`.
    pub fn new(channels: usize) -> Result<Self, NeuroError> {
        if channels == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "channels",
                value: 0.0,
            });
        }
        Ok(Self {
            channels,
            eps: 1e-5,
            momentum: 0.1,
            gamma: Param::new(Tensor::full(vec![channels], 1.0), false),
            beta: Param::new(Tensor::zeros(vec![channels]), false),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            cache: None,
        })
    }

    /// Number of normalized channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Running (inference-time) per-channel means.
    #[must_use]
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running (inference-time) per-channel variances.
    #[must_use]
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NeuroError> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.channels {
            return Err(NeuroError::ShapeMismatch {
                context: "BatchNorm2d::forward expects [N, C, H, W]",
                expected: vec![0, self.channels, 0, 0],
                actual: shape.to_vec(),
            });
        }
        Ok((shape[0], shape[2], shape[3]))
    }
}

impl Layer for BatchNorm2d {
    fn name(&self) -> &'static str {
        "batchnorm2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NeuroError> {
        let (n, h, w) = self.check_input(input)?;
        let plane = h * w;
        let count = (n * plane) as f32;
        let x = input.as_slice();

        let (mean, var) = if train {
            let mut mean = vec![0.0f32; self.channels];
            let mut var = vec![0.0f32; self.channels];
            for s in 0..n {
                for (c, m) in mean.iter_mut().enumerate() {
                    let base = (s * self.channels + c) * plane;
                    *m += x[base..base + plane].iter().sum::<f32>();
                }
            }
            for m in &mut mean {
                *m /= count;
            }
            for s in 0..n {
                for c in 0..self.channels {
                    let base = (s * self.channels + c) * plane;
                    var[c] += x[base..base + plane]
                        .iter()
                        .map(|v| (v - mean[c]) * (v - mean[c]))
                        .sum::<f32>();
                }
            }
            for v in &mut var {
                *v /= count;
            }
            for c in 0..self.channels {
                self.running_mean[c] =
                    (1.0 - self.momentum) * self.running_mean[c] + self.momentum * mean[c];
                self.running_var[c] =
                    (1.0 - self.momentum) * self.running_var[c] + self.momentum * var[c];
            }
            (mean, var)
        } else {
            (self.running_mean.clone(), self.running_var.clone())
        };

        let inv_std: Vec<f32> = var.iter().map(|v| 1.0 / (v + self.eps).sqrt()).collect();
        let gamma = self.gamma.value.as_slice();
        let beta = self.beta.value.as_slice();

        let mut normalized = Tensor::zeros(input.shape().to_vec());
        let mut out = Tensor::zeros(input.shape().to_vec());
        {
            let xn = normalized.as_mut_slice();
            let y = out.as_mut_slice();
            for s in 0..n {
                for c in 0..self.channels {
                    let base = (s * self.channels + c) * plane;
                    for i in base..base + plane {
                        let norm = (x[i] - mean[c]) * inv_std[c];
                        xn[i] = norm;
                        y[i] = gamma[c] * norm + beta[c];
                    }
                }
            }
        }
        if train {
            self.cache = Some(BnCache {
                normalized,
                inv_std,
            });
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let cache = self.cache.take().ok_or(NeuroError::ShapeMismatch {
            context: "BatchNorm2d::backward before training forward",
            expected: vec![],
            actual: vec![],
        })?;
        let shape = cache.normalized.shape().to_vec();
        if grad_output.shape() != shape.as_slice() {
            return Err(NeuroError::ShapeMismatch {
                context: "BatchNorm2d::backward",
                expected: shape,
                actual: grad_output.shape().to_vec(),
            });
        }
        let (n, h, w) = (shape[0], shape[2], shape[3]);
        let plane = h * w;
        let count = (n * plane) as f32;
        let go = grad_output.as_slice();
        let xn = cache.normalized.as_slice();
        let gamma = self.gamma.value.as_slice();

        // Per-channel reductions: Σ dy and Σ dy·x̂.
        let mut sum_dy = vec![0.0f32; self.channels];
        let mut sum_dy_xn = vec![0.0f32; self.channels];
        for s in 0..n {
            for c in 0..self.channels {
                let base = (s * self.channels + c) * plane;
                for i in base..base + plane {
                    sum_dy[c] += go[i];
                    sum_dy_xn[c] += go[i] * xn[i];
                }
            }
        }
        for c in 0..self.channels {
            self.gamma.grad.as_mut_slice()[c] += sum_dy_xn[c];
            self.beta.grad.as_mut_slice()[c] += sum_dy[c];
        }

        // dx = (γ·inv_std/M) · (M·dy − Σdy − x̂·Σ(dy·x̂))
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.as_mut_slice();
        for s in 0..n {
            for c in 0..self.channels {
                let base = (s * self.channels + c) * plane;
                let scale = gamma[c] * cache.inv_std[c] / count;
                for i in base..base + plane {
                    gi[i] = scale * (count * go[i] - sum_dy[c] - xn[i] * sum_dy_xn[c]);
                }
            }
        }
        Ok(grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.gamma, &mut self.beta]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.gamma, &self.beta]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn varied_input() -> Tensor {
        Tensor::from_vec(
            vec![2, 2, 2, 2],
            (0..16)
                .map(|i| (i as f32 * 0.7).sin() * 3.0 + 1.0)
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn training_output_is_standardized() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let y = bn.forward(&varied_input(), true).unwrap();
        // Per-channel mean ≈ 0 and variance ≈ 1 after normalization.
        let data = y.as_slice();
        for c in 0..2 {
            let vals: Vec<f32> = (0..2)
                .flat_map(|s| {
                    let base = (s * 2 + c) * 4;
                    data[base..base + 4].to_vec()
                })
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-5, "channel {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "channel {c} var {var}");
        }
    }

    #[test]
    fn running_stats_move_toward_batch_stats() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let before = bn.running_mean().to_vec();
        bn.forward(&varied_input(), true).unwrap();
        assert_ne!(before, bn.running_mean());
    }

    #[test]
    fn eval_uses_running_stats_and_is_deterministic() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        for _ in 0..5 {
            bn.forward(&varied_input(), true).unwrap();
        }
        let y1 = bn.forward(&varied_input(), false).unwrap();
        let y2 = bn.forward(&varied_input(), false).unwrap();
        assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn backward_gradient_sums_to_zero_per_channel() {
        // Because the output is mean-centred per channel, the gradient wrt
        // the input must sum to ~0 per channel when γ = 1.
        let mut bn = BatchNorm2d::new(2).unwrap();
        bn.forward(&varied_input(), true).unwrap();
        let g = Tensor::from_vec(
            vec![2, 2, 2, 2],
            (0..16).map(|i| (i as f32 * 0.3).cos()).collect(),
        )
        .unwrap();
        let gx = bn.backward(&g).unwrap();
        let data = gx.as_slice();
        for c in 0..2 {
            let sum: f32 = (0..2)
                .map(|s| {
                    let base = (s * 2 + c) * 4;
                    data[base..base + 4].iter().sum::<f32>()
                })
                .sum();
            assert!(sum.abs() < 1e-4, "channel {c} grad sum {sum}");
        }
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let mut bn = BatchNorm2d::new(3).unwrap();
        assert!(bn.forward(&Tensor::zeros(vec![1, 2, 2, 2]), true).is_err());
    }
}

//! Fully connected (dense) layer.

use crate::init::he_normal;
use crate::layers::{IntSpec, Layer, Param};
use crate::linalg::int as intgemm;
use crate::linalg::{matmul, matmul_a_bt, matmul_at_b};
use crate::rng::SimRng;
use crate::scratch::{self, SlotI16, SlotI32};
use crate::{NeuroError, Tensor};

/// A fully connected layer `y = x·Wᵀ + b` over `[N, in]` batches.
///
/// All three products (forward, `dW`, `dX`) are single calls into the
/// tiled GEMM engine, which fans large row ranges out across the shared
/// worker pool internally; the batch reduction inside `dW` happens in the
/// engine's fixed panel order, so gradients are bitwise stable across
/// thread counts.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Layer, Linear, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut fc = Linear::new(3, 2, 42)?;
/// let y = fc.forward(&Tensor::zeros(vec![5, 3]), false)?;
/// assert_eq!(y.shape(), &[5, 2]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    in_features: usize,
    out_features: usize,
    int_mode: Option<IntSpec>,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a dense layer from `in_features` to `out_features`,
    /// He-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when either dimension is 0.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Result<Self, NeuroError> {
        if in_features == 0 || out_features == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "linear dimensions",
                value: 0.0,
            });
        }
        let mut rng = SimRng::seed_from(seed);
        let weight = he_normal(vec![out_features, in_features], in_features, &mut rng);
        Ok(Self {
            in_features,
            out_features,
            int_mode: None,
            weight: Param::new(weight, true),
            bias: Param::new(Tensor::zeros(vec![out_features]), false),
            cached_input: None,
        })
    }

    /// Number of input features.
    #[must_use]
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Number of output features.
    #[must_use]
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// Total trainable parameters (weights + biases).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    fn check_input(&self, input: &Tensor) -> Result<usize, NeuroError> {
        let shape = input.shape();
        if shape.len() != 2 || shape[1] != self.in_features {
            return Err(NeuroError::ShapeMismatch {
                context: "Linear::forward expects [N, in_features]",
                expected: vec![0, self.in_features],
                actual: shape.to_vec(),
            });
        }
        Ok(shape[0])
    }

    /// Integer-datapath forward: quantize activations and weights onto
    /// their converter grids, run the exact `i16×i16→i32` GEMM, and
    /// dequantize once on store (fusing the bias add).
    fn forward_int(&self, input: &Tensor, spec: IntSpec, n: usize) -> Vec<f32> {
        let (m, k, out) = (n, self.in_features, self.out_features);
        scratch::with_buffer_i16(SlotI16::Act, |xq| {
            scratch::with_buffer_i16(SlotI16::Weight, |wq| {
                scratch::with_buffer_i32(SlotI32::Acc, |acc| {
                    let scale_x = intgemm::quantize_i16(input.as_slice(), spec.act_steps, xq);
                    let scale_w =
                        intgemm::quantize_i16(self.weight.value.as_slice(), spec.weight_steps, wq);
                    acc.clear();
                    acc.resize(m * out, 0);
                    intgemm::matmul_i16_a_bt(xq, wq, acc, m, k, out);
                    let scale = scale_x * scale_w;
                    let bias = self.bias.value.as_slice();
                    let mut y = vec![0.0f32; m * out];
                    for (row, acc_row) in y.chunks_exact_mut(out).zip(acc.chunks_exact(out)) {
                        for ((v, &a), &b) in row.iter_mut().zip(acc_row).zip(bias) {
                            *v = a as f32 * scale + b;
                        }
                    }
                    y
                })
            })
        })
    }
}

impl Layer for Linear {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NeuroError> {
        let n = self.check_input(input)?;
        if !train {
            if let Some(spec) = self.int_mode {
                if spec.is_valid() && spec.accumulator_safe(self.in_features) {
                    let out = self.forward_int(input, spec, n);
                    self.cached_input = Some(input.clone());
                    return Tensor::from_vec(vec![n, self.out_features], out);
                }
            }
        }
        let mut out = vec![0.0f32; n * self.out_features];
        // y = x · Wᵀ  (W stored [out, in])
        matmul_a_bt(
            input.as_slice(),
            self.weight.value.as_slice(),
            &mut out,
            n,
            self.in_features,
            self.out_features,
        );
        let bias = self.bias.value.as_slice();
        for row in out.chunks_mut(self.out_features) {
            for (v, &b) in row.iter_mut().zip(bias) {
                *v += b;
            }
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(vec![n, self.out_features], out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let input = self.cached_input.take().ok_or(NeuroError::ShapeMismatch {
            context: "Linear::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        let n = self.check_input(&input)?;
        if grad_output.shape() != [n, self.out_features] {
            return Err(NeuroError::ShapeMismatch {
                context: "Linear::backward",
                expected: vec![n, self.out_features],
                actual: grad_output.shape().to_vec(),
            });
        }
        // dW += dYᵀ · X   (dY is [N, out] stored row-major ⇒ Aᵀ·B form)
        matmul_at_b(
            grad_output.as_slice(),
            input.as_slice(),
            self.weight.grad.as_mut_slice(),
            self.out_features,
            n,
            self.in_features,
        );
        // db += column sums of dY
        let db = self.bias.grad.as_mut_slice();
        for row in grad_output.as_slice().chunks(self.out_features) {
            for (g, &v) in db.iter_mut().zip(row) {
                *g += v;
            }
        }
        // dX = dY · W
        let mut grad_input = vec![0.0f32; n * self.in_features];
        matmul(
            grad_output.as_slice(),
            self.weight.value.as_slice(),
            &mut grad_input,
            n,
            self.out_features,
            self.in_features,
        );
        Tensor::from_vec(vec![n, self.in_features], grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_int_mode(&mut self, spec: Option<IntSpec>) {
        self.int_mode = spec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_mode_approximates_float_forward() {
        let mut float_fc = Linear::new(16, 8, 9).unwrap();
        let mut int_fc = float_fc.clone();
        int_fc.set_int_mode(Some(IntSpec {
            act_steps: 2047,
            weight_steps: 2047,
        }));
        let x = Tensor::from_vec(
            vec![4, 16],
            (0..64).map(|i| ((i as f32) * 0.31).sin()).collect(),
        )
        .unwrap();
        let yf = float_fc.forward(&x, false).unwrap();
        let yi = int_fc.forward(&x, false).unwrap();
        for (a, b) in yf.as_slice().iter().zip(yi.as_slice()) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
        // Training always runs the float path, bit for bit.
        let yt = int_fc.forward(&x, true).unwrap();
        assert_eq!(yf.as_slice(), yt.as_slice());
    }

    #[test]
    fn int_mode_falls_back_when_unsafe() {
        // Steps so deep the i32 accumulator could wrap: gate must route to
        // the float path rather than risk overflow.
        let mut fc = Linear::new(8, 4, 3).unwrap();
        let x = Tensor::from_vec(vec![2, 8], (0..16).map(|i| i as f32 * 0.1).collect()).unwrap();
        let expected = fc.forward(&x, false).unwrap();
        fc.set_int_mode(Some(IntSpec {
            act_steps: 32_767,
            weight_steps: 32_767,
        }));
        // 32767² · 8 ≥ 2³¹ ⇒ float fallback.
        let got = fc.forward(&x, false).unwrap();
        assert_eq!(expected.as_slice(), got.as_slice());
    }

    #[test]
    fn forward_matches_hand_computation() {
        let mut fc = Linear::new(2, 2, 1).unwrap();
        fc.weight.value = Tensor::from_vec(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        fc.bias.value = Tensor::from_vec(vec![2], vec![0.5, -0.5]).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let y = fc.forward(&x, false).unwrap();
        // y0 = 1·1 + 2·1 + 0.5 = 3.5 ; y1 = 3 + 4 − 0.5 = 6.5
        assert_eq!(y.as_slice(), &[3.5, 6.5]);
    }

    #[test]
    fn backward_gradients_match_hand_computation() {
        let mut fc = Linear::new(2, 1, 1).unwrap();
        fc.weight.value = Tensor::from_vec(vec![1, 2], vec![2.0, -1.0]).unwrap();
        fc.bias.value = Tensor::zeros(vec![1]);
        let x = Tensor::from_vec(vec![1, 2], vec![3.0, 4.0]).unwrap();
        fc.forward(&x, true).unwrap();
        let gx = fc
            .backward(&Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[2.0, -1.0]); // dX = dY·W
        assert_eq!(fc.weight.grad.as_slice(), &[3.0, 4.0]); // dW = dYᵀ·X
        assert_eq!(fc.bias.grad.as_slice(), &[1.0]);
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut fc = Linear::new(2, 1, 1).unwrap();
        let x = Tensor::from_vec(vec![1, 2], vec![1.0, 1.0]).unwrap();
        let g = Tensor::from_vec(vec![1, 1], vec![1.0]).unwrap();
        fc.forward(&x, true).unwrap();
        fc.backward(&g).unwrap();
        let after_one = fc.bias.grad.as_slice()[0];
        fc.forward(&x, true).unwrap();
        fc.backward(&g).unwrap();
        assert!((fc.bias.grad.as_slice()[0] - 2.0 * after_one).abs() < 1e-6);
    }

    #[test]
    fn wrong_width_is_rejected() {
        let mut fc = Linear::new(3, 2, 1).unwrap();
        assert!(fc.forward(&Tensor::zeros(vec![1, 4]), false).is_err());
    }
}

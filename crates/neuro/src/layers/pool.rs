//! Max pooling.

use crate::layers::Layer;
use crate::{NeuroError, Tensor};

/// 2-D max pooling over `[N, C, H, W]` batches.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Layer, MaxPool2d, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut pool = MaxPool2d::new(2)?;
/// let y = pool.forward(&Tensor::zeros(vec![1, 3, 8, 8]), false)?;
/// assert_eq!(y.shape(), &[1, 3, 4, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MaxPool2d {
    size: usize,
    input_shape: Option<Vec<usize>>,
    /// Flat input index of each output's argmax, for the backward scatter.
    argmax: Option<Vec<usize>>,
}

impl MaxPool2d {
    /// Creates a `size × size` max pool with stride `size`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when `size == 0`.
    pub fn new(size: usize) -> Result<Self, NeuroError> {
        if size == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "pool size",
                value: 0.0,
            });
        }
        Ok(Self {
            size,
            input_shape: None,
            argmax: None,
        })
    }

    /// The pooling window size (and stride).
    #[must_use]
    pub fn size(&self) -> usize {
        self.size
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &'static str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NeuroError> {
        let shape = input.shape();
        if shape.len() != 4 || shape[2] < self.size || shape[3] < self.size {
            return Err(NeuroError::ShapeMismatch {
                context: "MaxPool2d::forward expects [N, C, H, W] with H, W ≥ size",
                expected: vec![0, 0, self.size, self.size],
                actual: shape.to_vec(),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (h / self.size, w / self.size);
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c * oh * ow];
        let mut argmax = vec![0usize; n * c * oh * ow];
        for nc in 0..n * c {
            let plane = &x[nc * h * w..(nc + 1) * h * w];
            let out_plane = &mut out[nc * oh * ow..(nc + 1) * oh * ow];
            let arg_plane = &mut argmax[nc * oh * ow..(nc + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for ky in 0..self.size {
                        for kx in 0..self.size {
                            let iy = oy * self.size + ky;
                            let ix = ox * self.size + kx;
                            let v = plane[iy * w + ix];
                            if v > best {
                                best = v;
                                best_idx = nc * h * w + iy * w + ix;
                            }
                        }
                    }
                    out_plane[oy * ow + ox] = best;
                    arg_plane[oy * ow + ox] = best_idx;
                }
            }
        }
        self.input_shape = Some(shape.to_vec());
        self.argmax = Some(argmax);
        Tensor::from_vec(vec![n, c, oh, ow], out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let shape = self.input_shape.take().ok_or(NeuroError::ShapeMismatch {
            context: "MaxPool2d::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        let argmax = self.argmax.take().expect("argmax cached with shape");
        if grad_output.len() != argmax.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "MaxPool2d::backward",
                expected: vec![argmax.len()],
                actual: grad_output.shape().to_vec(),
            });
        }
        let mut grad_input = Tensor::zeros(shape);
        let gi = grad_input.as_mut_slice();
        for (&idx, &g) in argmax.iter().zip(grad_output.as_slice()) {
            gi[idx] += g;
        }
        Ok(grad_input)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_window_maxima() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(
            vec![1, 1, 4, 4],
            vec![
                1., 2., 5., 6., //
                3., 4., 7., 8., //
                9., 10., 13., 14., //
                11., 12., 15., 16.,
            ],
        )
        .unwrap();
        let y = pool.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[4., 8., 12., 16.]);
    }

    #[test]
    fn backward_routes_gradient_to_argmax() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1., 9., 2., 3.]).unwrap();
        pool.forward(&x, true).unwrap();
        let gx = pool
            .backward(&Tensor::from_vec(vec![1, 1, 1, 1], vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[0., 5., 0., 0.]);
    }

    #[test]
    fn odd_sizes_truncate() {
        let mut pool = MaxPool2d::new(2).unwrap();
        let y = pool
            .forward(&Tensor::zeros(vec![1, 1, 5, 5]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
    }

    #[test]
    fn too_small_input_is_rejected() {
        let mut pool = MaxPool2d::new(4).unwrap();
        assert!(pool
            .forward(&Tensor::zeros(vec![1, 1, 2, 2]), false)
            .is_err());
    }
}

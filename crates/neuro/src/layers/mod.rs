//! Neural-network layers with hand-written forward and backward passes.

mod conv;
mod global_pool;
mod linear;
mod norm;
mod pool;
mod residual;

pub use conv::{Conv2d, ConvImpl};
pub use global_pool::GlobalAvgPool2d;
pub use linear::Linear;
pub use norm::BatchNorm2d;
pub use pool::MaxPool2d;
pub use residual::ResidualBlock;

use crate::{NeuroError, Tensor};

/// Quantization geometry for the integer inference datapath.
///
/// The quantized accelerator backend models finite converters: an input
/// DAC with `act_steps` uniform signed levels per side and a readout grid
/// with `weight_steps` levels per side. When a layer runs in integer
/// mode it quantizes activations and weights onto those grids, executes
/// the matrix product in exact integer arithmetic
/// ([`crate::linalg::int`]), and dequantizes once on store — replacing
/// the seed behaviour of snapping to the grid and then multiplying in
/// floating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntSpec {
    /// Signed quantization levels per side for activations (input DAC).
    pub act_steps: u32,
    /// Signed quantization levels per side for weights (readout grid).
    pub weight_steps: u32,
}

impl IntSpec {
    /// Whether both grids fit the `i16` code range (and are non-trivial).
    #[must_use]
    pub fn is_valid(&self) -> bool {
        let ok = |s: u32| (1..=i16::MAX as u32).contains(&s);
        ok(self.act_steps) && ok(self.weight_steps)
    }

    /// Whether a dot product of length `k` at these bit depths cannot
    /// overflow the `i32` accumulator (see the overflow contract in
    /// [`crate::linalg::int`]).
    #[must_use]
    pub fn accumulator_safe(&self, k: usize) -> bool {
        (u64::from(self.act_steps))
            .saturating_mul(u64::from(self.weight_steps))
            .saturating_mul(k as u64)
            < 1 << 31
    }
}

/// A trainable parameter: value plus accumulated gradient.
///
/// Layers own their parameters; optimizers and the noise-aware trainer
/// access them through [`Layer::params_mut`].
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Gradient accumulated by the latest backward pass(es).
    pub grad: Tensor,
    /// Whether weight decay (L2 regularization) applies to this parameter.
    /// Convention: true for weights, false for biases and batch-norm
    /// affine parameters, matching common deep-learning practice.
    pub decay: bool,
}

impl Param {
    /// Wraps `value` with a zeroed gradient; `decay` selects whether L2
    /// weight decay applies.
    #[must_use]
    pub fn new(value: Tensor, decay: bool) -> Self {
        let grad = Tensor::zeros(value.shape().to_vec());
        Self { value, grad, decay }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A neural-network layer.
///
/// The contract mirrors classic define-by-layer frameworks:
///
/// 1. [`forward`](Self::forward) consumes a batch and caches whatever the
///    backward pass will need;
/// 2. [`backward`](Self::backward) consumes `∂L/∂output`, **accumulates**
///    parameter gradients into [`Param::grad`], and returns `∂L/∂input`;
/// 3. [`params_mut`](Self::params_mut) exposes the trainable state.
///
/// # Errors
///
/// `forward` and `backward` report [`NeuroError::ShapeMismatch`] when the
/// supplied tensors do not match the layer's expectations; `backward` also
/// errors when called before any `forward`.
pub trait Layer: Send + Sync {
    /// A short human-readable layer name (e.g. `"conv2d"`).
    fn name(&self) -> &'static str;

    /// Runs the layer on a batch. `train` selects training behaviour
    /// (batch statistics in batch norm; inference uses running statistics).
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NeuroError>;

    /// Back-propagates `grad_output`, accumulating parameter gradients and
    /// returning the gradient with respect to the layer input.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError>;

    /// Mutable access to the layer's trainable parameters (possibly empty).
    fn params_mut(&mut self) -> Vec<&mut Param> {
        Vec::new()
    }

    /// Shared access to the layer's trainable parameters (possibly empty).
    fn params(&self) -> Vec<&Param> {
        Vec::new()
    }

    /// Clones the layer into a boxed trait object (enables `Clone` for
    /// networks of heterogeneous layers).
    fn clone_box(&self) -> Box<dyn Layer>;

    /// Enables (`Some`) or disables (`None`) the integer inference
    /// datapath for layers that implement one (`Conv2d`, `Linear`).
    /// Layers without an integer implementation ignore the call; the
    /// training path (`forward` with `train == true`) always runs in
    /// floating point regardless.
    fn set_int_mode(&mut self, _spec: Option<IntSpec>) {}
}

impl Clone for Box<dyn Layer> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Rectified linear unit.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Layer, Relu, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut relu = Relu::new();
/// let x = Tensor::from_vec(vec![3], vec![-1.0, 0.0, 2.0])?;
/// let y = relu.forward(&x, false)?;
/// assert_eq!(y.as_slice(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU activation.
    #[must_use]
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn name(&self) -> &'static str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NeuroError> {
        let mut out = input.clone();
        let mask: Vec<bool> = input.as_slice().iter().map(|&x| x > 0.0).collect();
        for (v, &m) in out.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let mask = self.mask.as_ref().ok_or(NeuroError::ShapeMismatch {
            context: "Relu::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        if mask.len() != grad_output.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "Relu::backward",
                expected: vec![mask.len()],
                actual: grad_output.shape().to_vec(),
            });
        }
        let mut grad = grad_output.clone();
        for (g, &m) in grad.as_mut_slice().iter_mut().zip(mask) {
            if !m {
                *g = 0.0;
            }
        }
        Ok(grad)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

/// Flattens `[N, d1, d2, …]` into `[N, d1·d2·…]`.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Flatten, Layer, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut flat = Flatten::new();
/// let x = Tensor::zeros(vec![2, 3, 4, 4]);
/// let y = flat.forward(&x, false)?;
/// assert_eq!(y.shape(), &[2, 48]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Flatten {
    input_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flattening layer.
    #[must_use]
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &'static str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NeuroError> {
        let shape = input.shape().to_vec();
        if shape.is_empty() {
            return Err(NeuroError::ShapeMismatch {
                context: "Flatten::forward needs rank ≥ 1",
                expected: vec![1],
                actual: shape,
            });
        }
        let n = shape[0];
        let rest: usize = shape[1..].iter().product();
        self.input_shape = Some(shape);
        input.clone().reshape(vec![n, rest])
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let shape = self.input_shape.clone().ok_or(NeuroError::ShapeMismatch {
            context: "Flatten::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        grad_output.clone().reshape(shape)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_vec(vec![4], vec![-2.0, -0.5, 0.5, 2.0]).unwrap();
        relu.forward(&x, true).unwrap();
        let g = Tensor::full(vec![4], 1.0);
        let gx = relu.backward(&g).unwrap();
        assert_eq!(gx.as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn relu_backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros(vec![1])).is_err());
    }

    #[test]
    fn flatten_round_trips_shape() {
        let mut flat = Flatten::new();
        let x = Tensor::zeros(vec![2, 3, 5]);
        let y = flat.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 15]);
        let gx = flat.backward(&y).unwrap();
        assert_eq!(gx.shape(), &[2, 3, 5]);
    }

    #[test]
    fn param_zero_grad_clears() {
        let mut p = Param::new(Tensor::full(vec![3], 1.0), true);
        p.grad.fill(5.0);
        p.zero_grad();
        assert!(p.grad.as_slice().iter().all(|&g| g == 0.0));
    }

    #[test]
    fn boxed_layer_clone_is_independent() {
        let mut relu = Relu::new();
        relu.forward(&Tensor::from_vec(vec![1], vec![1.0]).unwrap(), true)
            .unwrap();
        let boxed: Box<dyn Layer> = Box::new(relu);
        let mut copy = boxed.clone();
        // The clone carries the cached mask and can run backward directly.
        assert!(copy.backward(&Tensor::zeros(vec![1])).is_ok());
    }
}

//! ResNet-style residual basic block.

use crate::layers::{BatchNorm2d, Conv2d, Layer, Param, Relu};
use crate::{NeuroError, Tensor};

/// A ResNet "basic block": two 3×3 conv+BN stages with a skip connection,
/// `y = relu(bn2(conv2(relu(bn1(conv1(x))))) + shortcut(x))`.
///
/// When the block changes channel count or stride, the shortcut is a 1×1
/// strided convolution followed by batch norm, as in the original ResNet.
/// Seventeen convolutions arranged in these blocks (plus the stem) make up
/// the paper's ResNet18 workload.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Layer, ResidualBlock, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut block = ResidualBlock::new(8, 16, 2, 42)?; // downsampling block
/// let y = block.forward(&Tensor::zeros(vec![1, 8, 16, 16]), true)?;
/// assert_eq!(y.shape(), &[1, 16, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    shortcut: Option<(Conv2d, BatchNorm2d)>,
    /// Post-addition ReLU mask.
    out_mask: Option<Vec<bool>>,
}

impl ResidualBlock {
    /// Creates a basic block from `in_channels` to `out_channels` with the
    /// given `stride` on the first convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when a dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        seed: u64,
    ) -> Result<Self, NeuroError> {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, seed)?
            .with_stride(stride)?
            .with_padding(1);
        let conv2 =
            Conv2d::new(out_channels, out_channels, 3, seed.wrapping_add(1))?.with_padding(1);
        let shortcut = if stride != 1 || in_channels != out_channels {
            let proj = Conv2d::new(in_channels, out_channels, 1, seed.wrapping_add(2))?
                .with_stride(stride)?
                .with_padding(0);
            Some((proj, BatchNorm2d::new(out_channels)?))
        } else {
            None
        };
        Ok(Self {
            conv1,
            bn1: BatchNorm2d::new(out_channels)?,
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm2d::new(out_channels)?,
            shortcut,
            out_mask: None,
        })
    }

    /// Number of convolution layers inside the block (2 or 3 with a
    /// projection shortcut).
    #[must_use]
    pub fn conv_count(&self) -> usize {
        2 + usize::from(self.shortcut.is_some())
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &'static str {
        "residual_block"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NeuroError> {
        let main = self.conv1.forward(input, train)?;
        let main = self.bn1.forward(&main, train)?;
        let main = self.relu1.forward(&main, train)?;
        let main = self.conv2.forward(&main, train)?;
        let mut main = self.bn2.forward(&main, train)?;

        let residual = match &mut self.shortcut {
            Some((proj, bn)) => {
                let r = proj.forward(input, train)?;
                bn.forward(&r, train)?
            }
            None => input.clone(),
        };
        main.axpy(1.0, &residual)?;

        // Final ReLU with a cached mask for backward.
        let mask: Vec<bool> = main.as_slice().iter().map(|&x| x > 0.0).collect();
        for (v, &m) in main.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        self.out_mask = Some(mask);
        Ok(main)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let mask = self.out_mask.take().ok_or(NeuroError::ShapeMismatch {
            context: "ResidualBlock::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        if mask.len() != grad_output.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "ResidualBlock::backward",
                expected: vec![mask.len()],
                actual: grad_output.shape().to_vec(),
            });
        }
        // Gradient through the post-addition ReLU.
        let mut grad_sum = grad_output.clone();
        for (g, &m) in grad_sum.as_mut_slice().iter_mut().zip(&mask) {
            if !m {
                *g = 0.0;
            }
        }

        // Main path, reversed.
        let g = self.bn2.backward(&grad_sum)?;
        let g = self.conv2.backward(&g)?;
        let g = self.relu1.backward(&g)?;
        let g = self.bn1.backward(&g)?;
        let mut grad_input = self.conv1.backward(&g)?;

        // Shortcut path.
        match &mut self.shortcut {
            Some((proj, bn)) => {
                let g = bn.backward(&grad_sum)?;
                let g = proj.backward(&g)?;
                grad_input.axpy(1.0, &g)?;
            }
            None => {
                grad_input.axpy(1.0, &grad_sum)?;
            }
        }
        Ok(grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut params = self.conv1.params_mut();
        params.extend(self.bn1.params_mut());
        params.extend(self.conv2.params_mut());
        params.extend(self.bn2.params_mut());
        if let Some((proj, bn)) = &mut self.shortcut {
            params.extend(proj.params_mut());
            params.extend(bn.params_mut());
        }
        params
    }

    fn params(&self) -> Vec<&Param> {
        let mut params = self.conv1.params();
        params.extend(self.bn1.params());
        params.extend(self.conv2.params());
        params.extend(self.bn2.params());
        if let Some((proj, bn)) = &self.shortcut {
            params.extend(proj.params());
            params.extend(bn.params());
        }
        params
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_block_preserves_shape() {
        let mut block = ResidualBlock::new(4, 4, 1, 1).unwrap();
        let y = block
            .forward(&Tensor::zeros(vec![2, 4, 8, 8]), true)
            .unwrap();
        assert_eq!(y.shape(), &[2, 4, 8, 8]);
        assert_eq!(block.conv_count(), 2);
    }

    #[test]
    fn downsample_block_projects_shortcut() {
        let mut block = ResidualBlock::new(4, 8, 2, 1).unwrap();
        let y = block
            .forward(&Tensor::zeros(vec![1, 4, 8, 8]), true)
            .unwrap();
        assert_eq!(y.shape(), &[1, 8, 4, 4]);
        assert_eq!(block.conv_count(), 3);
    }

    #[test]
    fn backward_returns_input_shaped_gradient() {
        let mut block = ResidualBlock::new(3, 6, 2, 9).unwrap();
        let x = Tensor::from_vec(
            vec![2, 3, 6, 6],
            (0..216).map(|i| (i as f32 * 0.05).sin()).collect(),
        )
        .unwrap();
        let y = block.forward(&x, true).unwrap();
        let gx = block
            .backward(&Tensor::full(y.shape().to_vec(), 0.1))
            .unwrap();
        assert_eq!(gx.shape(), x.shape());
        // Something must flow back.
        assert!(gx.max_abs() > 0.0);
    }

    #[test]
    fn params_cover_all_sublayers() {
        let block = ResidualBlock::new(4, 8, 2, 1).unwrap();
        // conv1(w,b) bn1(γ,β) conv2(w,b) bn2(γ,β) proj(w,b) bnp(γ,β) = 12.
        assert_eq!(block.params().len(), 12);
        let identity = ResidualBlock::new(4, 4, 1, 1).unwrap();
        assert_eq!(identity.params().len(), 8);
    }
}

//! Global average pooling.

use crate::layers::Layer;
use crate::{NeuroError, Tensor};

/// Global average pooling: `[N, C, H, W] → [N, C]`.
///
/// The standard head of residual networks: each channel collapses to its
/// spatial mean before the final classifier.
///
/// # Example
///
/// ```
/// use safelight_neuro::{GlobalAvgPool2d, Layer, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut pool = GlobalAvgPool2d::new();
/// let y = pool.forward(&Tensor::full(vec![2, 3, 4, 4], 2.0), false)?;
/// assert_eq!(y.shape(), &[2, 3]);
/// assert_eq!(y.as_slice()[0], 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalAvgPool2d {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool2d {
    /// Creates a global average pooling layer.
    #[must_use]
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for GlobalAvgPool2d {
    fn name(&self) -> &'static str {
        "global_avg_pool2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NeuroError> {
        let shape = input.shape();
        if shape.len() != 4 {
            return Err(NeuroError::ShapeMismatch {
                context: "GlobalAvgPool2d::forward expects [N, C, H, W]",
                expected: vec![0, 0, 0, 0],
                actual: shape.to_vec(),
            });
        }
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let x = input.as_slice();
        let mut out = vec![0.0f32; n * c];
        for (nc, o) in out.iter_mut().enumerate() {
            *o = x[nc * plane..(nc + 1) * plane].iter().sum::<f32>() / plane as f32;
        }
        self.input_shape = Some(shape.to_vec());
        Tensor::from_vec(vec![n, c], out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let shape = self.input_shape.take().ok_or(NeuroError::ShapeMismatch {
            context: "GlobalAvgPool2d::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        let (n, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if grad_output.shape() != [n, c] {
            return Err(NeuroError::ShapeMismatch {
                context: "GlobalAvgPool2d::backward",
                expected: vec![n, c],
                actual: grad_output.shape().to_vec(),
            });
        }
        let plane = h * w;
        let scale = 1.0 / plane as f32;
        let mut grad = Tensor::zeros(shape);
        let g = grad.as_mut_slice();
        for (nc, &go) in grad_output.as_slice().iter().enumerate() {
            for v in &mut g[nc * plane..(nc + 1) * plane] {
                *v = go * scale;
            }
        }
        Ok(grad)
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_averages_each_plane() {
        let mut pool = GlobalAvgPool2d::new();
        let x = Tensor::from_vec(vec![1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]).unwrap();
        let y = pool.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[2.0, 15.0]);
    }

    #[test]
    fn backward_spreads_gradient_uniformly() {
        let mut pool = GlobalAvgPool2d::new();
        let x = Tensor::zeros(vec![1, 1, 2, 2]);
        pool.forward(&x, true).unwrap();
        let gx = pool
            .backward(&Tensor::from_vec(vec![1, 1], vec![8.0]).unwrap())
            .unwrap();
        assert_eq!(gx.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn non_4d_input_is_rejected() {
        let mut pool = GlobalAvgPool2d::new();
        assert!(pool.forward(&Tensor::zeros(vec![2, 3]), false).is_err());
    }
}

//! 2-D convolution: im2col + blocked GEMM, an FFT overlap-add path for
//! shapes where frequency-domain products win, and an integer datapath
//! for quantized inference.

use crate::fft::{fft2_forward_real, fft2_inverse_real, spectrum_mul_acc, Fft};
use crate::init::he_normal;
use crate::layers::{IntSpec, Layer, Param};
use crate::linalg::int as intgemm;
use crate::linalg::kernel_stats::{self, KernelClass};
use crate::linalg::{matmul, matmul_a_bt, matmul_at_b};
use crate::parallel::map_blocks;
use crate::rng::SimRng;
use crate::scratch::{self, Slot, SlotI16, SlotI32};
use crate::{NeuroError, Tensor};

/// Samples per parallel work block. The block layout depends only on the
/// batch size, never on the thread count, so per-block gradient reductions
/// combine in a fixed order and backward results are bitwise stable across
/// thread counts.
const BATCH_BLOCK: usize = 4;

/// Convolution algorithm selector.
///
/// `Auto` (the default) defers to the `SAFELIGHT_CONV_IMPL` environment
/// variable (`im2col` / `fft` / `auto`) and, failing that, to a per-shape
/// cost model that charges the FFT path for its tile transforms and the
/// im2col path for its (SIMD-derated) GEMM flops. The FFT path only
/// serves stride-1 inference forwards; training and strided layers always
/// run im2col, whatever is requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvImpl {
    /// Environment override, then cost-model shape dispatch.
    #[default]
    Auto,
    /// Always gather patches and run the blocked GEMM.
    Im2col,
    /// Frequency-domain overlap-add convolution where legal (stride 1,
    /// inference); falls back to im2col elsewhere.
    Fft,
}

/// Process-wide `SAFELIGHT_CONV_IMPL` override, read once.
fn env_conv_impl() -> ConvImpl {
    static ENV: std::sync::OnceLock<ConvImpl> = std::sync::OnceLock::new();
    *ENV.get_or_init(|| match std::env::var("SAFELIGHT_CONV_IMPL") {
        Ok(v) if v.eq_ignore_ascii_case("im2col") => ConvImpl::Im2col,
        Ok(v) if v.eq_ignore_ascii_case("fft") => ConvImpl::Fft,
        _ => ConvImpl::Auto,
    })
}

/// A 2-D convolution over `[N, C, H, W]` batches.
///
/// Weights are stored as `[out_channels, in_channels·k·k]` — the im2col
/// layout — so the forward pass is one matrix product per sample. The
/// backward pass recomputes the im2col buffer instead of caching it, trading
/// a little compute for a much smaller memory footprint.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Conv2d, Layer, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut conv = Conv2d::new(1, 4, 3, 42)?; // 1→4 channels, 3×3, "same"
/// let x = Tensor::zeros(vec![2, 1, 8, 8]);
/// let y = conv.forward(&x, false)?;
/// assert_eq!(y.shape(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    threads: usize,
    conv_impl: ConvImpl,
    int_mode: Option<IntSpec>,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a `kernel × kernel` convolution from `in_channels` to
    /// `out_channels` with stride 1 and "same" padding (`kernel / 2`),
    /// He-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        seed: u64,
    ) -> Result<Self, NeuroError> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "conv2d dimensions",
                value: 0.0,
            });
        }
        let fan_in = in_channels * kernel * kernel;
        let mut rng = SimRng::seed_from(seed);
        let weight = he_normal(vec![out_channels, fan_in], fan_in, &mut rng);
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: kernel / 2,
            threads: 2,
            conv_impl: ConvImpl::Auto,
            int_mode: None,
            weight: Param::new(weight, true),
            bias: Param::new(Tensor::zeros(vec![out_channels]), false),
            cached_input: None,
        })
    }

    /// Sets the stride.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when `stride == 0`.
    pub fn with_stride(mut self, stride: usize) -> Result<Self, NeuroError> {
        if stride == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "stride",
                value: 0.0,
            });
        }
        self.stride = stride;
        Ok(self)
    }

    /// Sets the zero padding on every side.
    #[must_use]
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the worker-thread count used for batch-parallel passes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Pins the convolution algorithm (overriding both the environment
    /// and the cost model). `Fft` still degrades to im2col for strided
    /// layers and training passes, where the frequency path is not legal.
    #[must_use]
    pub fn with_conv_impl(mut self, imp: ConvImpl) -> Self {
        self.conv_impl = imp;
        self
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Total trainable parameters (weights + biases).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    /// Output spatial size for an input of `h × w`.
    fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), NeuroError> {
        let he = h + 2 * self.padding;
        let we = w + 2 * self.padding;
        if he < self.kernel || we < self.kernel {
            return Err(NeuroError::ShapeMismatch {
                context: "Conv2d input smaller than kernel",
                expected: vec![self.kernel, self.kernel],
                actual: vec![h, w],
            });
        }
        Ok((
            (he - self.kernel) / self.stride + 1,
            (we - self.kernel) / self.stride + 1,
        ))
    }

    /// Gathers sample `n`'s receptive fields into the block im2col buffer:
    /// row `r` of the logical `[K][ld]` matrix starts at `col[r*ld]`, and
    /// this sample's `OH·OW` columns start at `offset`. The buffer must be
    /// pre-zeroed (padding cells are simply left untouched).
    #[allow(clippy::too_many_arguments)]
    fn im2col(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        col: &mut [f32],
        ld: usize,
        offset: usize,
    ) {
        let k = self.kernel;
        let sample = &input[n * self.in_channels * h * w..];
        for ic in 0..self.in_channels {
            let plane = &sample[ic * h * w..(ic + 1) * h * w];
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ic * k + kh) * k + kw;
                    let out_row = &mut col[row * ld + offset..row * ld + offset + oh * ow];
                    for oy in 0..oh {
                        let iy = oy * self.stride + kh;
                        if iy < self.padding || iy >= h + self.padding {
                            continue;
                        }
                        let iy = iy - self.padding;
                        for ox in 0..ow {
                            let ix = ox * self.stride + kw;
                            if ix < self.padding || ix >= w + self.padding {
                                continue;
                            }
                            out_row[oy * ow + ox] = plane[iy * w + (ix - self.padding)];
                        }
                    }
                }
            }
        }
    }

    /// Scatters `col`-layout gradients (same `[K][ld]` layout and sample
    /// `offset` as [`Self::im2col`]) back into sample `n` of `grad_input`.
    #[allow(clippy::too_many_arguments)]
    fn col2im(
        &self,
        col: &[f32],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        grad_input: &mut [f32],
        ld: usize,
        offset: usize,
    ) {
        let k = self.kernel;
        let sample = &mut grad_input[n * self.in_channels * h * w..];
        for ic in 0..self.in_channels {
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ic * k + kh) * k + kw;
                    let col_row = &col[row * ld + offset..row * ld + offset + oh * ow];
                    for oy in 0..oh {
                        let iy = oy * self.stride + kh;
                        if iy < self.padding || iy >= h + self.padding {
                            continue;
                        }
                        let iy = iy - self.padding;
                        for ox in 0..ow {
                            let ix = ox * self.stride + kw;
                            if ix < self.padding || ix >= w + self.padding {
                                continue;
                            }
                            sample[(ic * h + iy) * w + (ix - self.padding)] +=
                                col_row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }

    /// Gathers sample `n`'s receptive fields **transposed** — one row of
    /// `kdim` codes per output column at stride `row_stride ≥ kdim`,
    /// `colt[(col_offset + c)*row_stride + row]` — which is the row-dot
    /// layout the integer GEMM wants. The stride lets the caller pad each
    /// row to the kernel's vector width. The buffer must be pre-zeroed.
    #[allow(clippy::too_many_arguments)]
    fn im2col_t(
        &self,
        input: &[i16],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        colt: &mut [i16],
        col_offset: usize,
        row_stride: usize,
    ) {
        let k = self.kernel;
        let sample = &input[n * self.in_channels * h * w..];
        for ic in 0..self.in_channels {
            let plane = &sample[ic * h * w..(ic + 1) * h * w];
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ic * k + kh) * k + kw;
                    for oy in 0..oh {
                        let iy = oy * self.stride + kh;
                        if iy < self.padding || iy >= h + self.padding {
                            continue;
                        }
                        let iy = iy - self.padding;
                        for ox in 0..ow {
                            let ix = ox * self.stride + kw;
                            if ix < self.padding || ix >= w + self.padding {
                                continue;
                            }
                            colt[(col_offset + oy * ow + ox) * row_stride + row] =
                                plane[iy * w + (ix - self.padding)];
                        }
                    }
                }
            }
        }
    }

    /// Estimated cost of the best FFT tile size for this layer shape, as
    /// `(cost, tile)` — or `None` when the frequency path is not legal
    /// (stride ≠ 1) or no power-of-two tile fits.
    fn fft_candidate(&self, h: usize, w: usize, n: usize) -> Option<(f64, usize)> {
        if self.stride != 1 {
            return None;
        }
        let k = self.kernel;
        let (ic, oc) = (self.in_channels, self.out_channels);
        let hp = h + 2 * self.padding;
        let wp = w + 2 * self.padding;
        let mut best: Option<(f64, usize)> = None;
        for p in [8usize, 16, 32, 64] {
            if p < 2 * k || p - k + 1 == 0 {
                continue;
            }
            let t = p - k + 1;
            let ntiles = hp.div_ceil(t) * wp.div_ceil(t);
            // One 2-D FFT of a p×p tile ≈ 10·p²·log2(p) flops (row +
            // column passes, ~5 flops per butterfly element).
            let f = 10.0 * (p * p) as f64 * (p as f64).log2();
            // Kernel spectra amortize over the batch and all tiles; each
            // tile pays ic forward + oc inverse transforms plus the
            // pointwise complex products (4 flops per spectrum element
            // per channel pair — one multiply-accumulate pass).
            let cost = (ic * oc) as f64 * f
                + (n * ntiles) as f64 * ((ic + oc) as f64 * f + (4 * ic * oc * p * p) as f64);
            if best.is_none_or(|(c, _)| cost < c) {
                best = Some((cost, p));
            }
        }
        best
    }

    /// Shape dispatch for `ConvImpl::Auto`: FFT when its transform cost
    /// beats the im2col GEMM's flops *derated by the SIMD advantage* of
    /// the packed kernel (the FFT loops are scalar). Small kernels on
    /// small images — the common CNN case — stay on im2col.
    fn fft_auto_tile(&self, h: usize, w: usize, oh: usize, ow: usize, n: usize) -> Option<usize> {
        let (cost, p) = self.fft_candidate(h, w, n)?;
        let k = self.kernel;
        let gemm_flops = 2.0 * (self.out_channels * self.in_channels * k * k * oh * ow * n) as f64;
        const GEMM_SIMD_ADVANTAGE: f64 = 8.0;
        (cost < gemm_flops / GEMM_SIMD_ADVANTAGE).then_some(p)
    }

    /// im2col + blocked-GEMM forward (the float default); returns the
    /// assembled `[N][OC][OH·OW]` data.
    fn forward_im2col(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
    ) -> Vec<f32> {
        let kdim = self.in_channels * self.kernel * self.kernel;
        let per_sample_out = self.out_channels * oh * ow;
        let weight = self.weight.value.as_slice();
        let bias = self.bias.value.as_slice();
        kernel_stats::record(KernelClass::Im2colConv);

        // Per-block workers gather a whole block of samples into one wide
        // im2col matrix and run a single GEMM over it (`N = block·OH·OW`),
        // so panel packing amortizes across batch items; the buffers come
        // from the thread's scratch arena instead of fresh allocations.
        let chunks = map_blocks(n, BATCH_BLOCK, self.threads > 1, |start, end| {
            let block_len = end - start;
            let ncols = block_len * oh * ow;
            scratch::with_buffer(Slot::Col, |col| {
                col.clear();
                col.resize(kdim * ncols, 0.0);
                for s in start..end {
                    self.im2col(x, s, h, w, oh, ow, col, ncols, (s - start) * oh * ow);
                }
                scratch::with_buffer(Slot::OutBlock, |gemm_out| {
                    gemm_out.clear();
                    gemm_out.resize(self.out_channels * ncols, 0.0);
                    matmul(weight, col, gemm_out, self.out_channels, kdim, ncols);
                    // Scatter [oc][sample·OH·OW] → [sample][oc][OH·OW], adding bias.
                    let mut out = vec![0.0f32; block_len * per_sample_out];
                    for si in 0..block_len {
                        for oc in 0..self.out_channels {
                            let src = &gemm_out[oc * ncols + si * oh * ow..][..oh * ow];
                            let dst = &mut out[si * per_sample_out + oc * oh * ow..][..oh * ow];
                            let b = bias[oc];
                            for (d, &v) in dst.iter_mut().zip(src) {
                                *d = v + b;
                            }
                        }
                    }
                    out
                })
            })
        });

        let mut data = Vec::with_capacity(n * per_sample_out);
        for chunk in chunks {
            data.extend_from_slice(&chunk);
        }
        data
    }

    /// Frequency-domain forward: overlap-add tiling with `p×p` real FFTs.
    ///
    /// Each `T×T` patch of the (padded) input (`T = p − kernel + 1`) is
    /// zero-extended to `p×p` and transformed once per input channel; each
    /// output channel then accumulates the pointwise spectrum products
    /// against the pre-transformed (flipped) kernels and inverts. Tile
    /// results overlap by `kernel − 1` pixels and add — linear
    /// convolution by construction, since `T + kernel − 1 = p` leaves no
    /// circular wrap. Only legal for stride 1; callers guarantee that.
    #[allow(clippy::too_many_arguments)]
    fn forward_fft(
        &self,
        x: &[f32],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        p: usize,
    ) -> Vec<f32> {
        let k = self.kernel;
        let (ic_n, oc_n) = (self.in_channels, self.out_channels);
        let hp = h + 2 * self.padding;
        let wp = w + 2 * self.padding;
        let t = p - k + 1;
        let spec_len = 2 * p * p;
        let per_sample_out = oc_n * oh * ow;
        let plan = Fft::new(p);
        let weight = self.weight.value.as_slice();
        let bias = self.bias.value.as_slice();
        kernel_stats::record(KernelClass::FftConv);

        // Kernel spectra, shared read-only by every worker: the flipped
        // kernel (correlation = convolution with the flipped filter),
        // zero-extended to p×p and transformed once per channel pair.
        let mut hspec = vec![0.0f32; oc_n * ic_n * spec_len];
        {
            let mut tile = vec![0.0f32; p * p];
            let mut fscratch = vec![0.0f32; 4 * p];
            for oc in 0..oc_n {
                for ic in 0..ic_n {
                    tile.fill(0.0);
                    let wk = &weight[(oc * ic_n + ic) * k * k..][..k * k];
                    for u in 0..k {
                        for v in 0..k {
                            tile[u * p + v] = wk[(k - 1 - u) * k + (k - 1 - v)];
                        }
                    }
                    let dst = &mut hspec[(oc * ic_n + ic) * spec_len..][..spec_len];
                    fft2_forward_real(&plan, &tile, dst, &mut fscratch);
                }
            }
        }
        let hspec = &hspec;
        let plan = &plan;

        let chunks = map_blocks(n, BATCH_BLOCK, self.threads > 1, |start, end| {
            let block_len = end - start;
            let mut out = vec![0.0f32; block_len * per_sample_out];
            scratch::with_buffer(Slot::FftImage, |xspec| {
                xspec.clear();
                xspec.resize(ic_n * spec_len, 0.0);
                scratch::with_buffer(Slot::FftStage, |stage| {
                    stage.clear();
                    stage.resize(spec_len + p * p + 4 * p, 0.0);
                    let (acc, rest) = stage.split_at_mut(spec_len);
                    let (tile, fscratch) = rest.split_at_mut(p * p);
                    for (si, s) in (start..end).enumerate() {
                        let sample = &x[s * ic_n * h * w..];
                        let out_s = &mut out[si * per_sample_out..(si + 1) * per_sample_out];
                        for (oc, b) in bias.iter().enumerate() {
                            out_s[oc * oh * ow..(oc + 1) * oh * ow].fill(*b);
                        }
                        let mut a = 0;
                        while a < hp {
                            let mut bcol = 0;
                            while bcol < wp {
                                // Gather + transform every input channel's tile.
                                for ic in 0..ic_n {
                                    let plane = &sample[ic * h * w..(ic + 1) * h * w];
                                    tile.fill(0.0);
                                    for ty in 0..t.min(hp - a) {
                                        let iy = a + ty;
                                        if iy < self.padding || iy >= h + self.padding {
                                            continue;
                                        }
                                        let iy = iy - self.padding;
                                        for tx in 0..t.min(wp - bcol) {
                                            let ix = bcol + tx;
                                            if ix < self.padding || ix >= w + self.padding {
                                                continue;
                                            }
                                            tile[ty * p + tx] = plane[iy * w + (ix - self.padding)];
                                        }
                                    }
                                    let dst = &mut xspec[ic * spec_len..(ic + 1) * spec_len];
                                    fft2_forward_real(plan, tile, dst, fscratch);
                                }
                                // Accumulate spectra per output channel, invert,
                                // overlap-add into the output plane.
                                for oc in 0..oc_n {
                                    acc.fill(0.0);
                                    for ic in 0..ic_n {
                                        spectrum_mul_acc(
                                            acc,
                                            &xspec[ic * spec_len..(ic + 1) * spec_len],
                                            &hspec[(oc * ic_n + ic) * spec_len..][..spec_len],
                                        );
                                    }
                                    fft2_inverse_real(plan, acc, tile, fscratch);
                                    let out_plane = &mut out_s[oc * oh * ow..(oc + 1) * oh * ow];
                                    for py in 0..p {
                                        let r = a + py;
                                        if r < k - 1 || r - (k - 1) >= oh {
                                            continue;
                                        }
                                        let ro = r - (k - 1);
                                        for px in 0..p {
                                            let c = bcol + px;
                                            if c < k - 1 || c - (k - 1) >= ow {
                                                continue;
                                            }
                                            out_plane[ro * ow + (c - (k - 1))] += tile[py * p + px];
                                        }
                                    }
                                }
                                bcol += t;
                            }
                            a += t;
                        }
                    }
                });
            });
            out
        });

        let mut data = Vec::with_capacity(n * per_sample_out);
        for chunk in chunks {
            data.extend_from_slice(&chunk);
        }
        data
    }

    /// Integer-datapath forward: the whole input tensor and the weights
    /// are quantized once onto their converter grids, patches are gathered
    /// transposed as `i16` codes, the product runs in exact integer
    /// arithmetic, and the store fuses dequantize + bias.
    #[allow(clippy::too_many_arguments)]
    fn forward_int(
        &self,
        x: &[f32],
        spec: IntSpec,
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
    ) -> Vec<f32> {
        let kdim = self.in_channels * self.kernel * self.kernel;
        // Pad the shared axis to the integer kernel's vector width so tiny
        // depths (a 3×3 single-channel layer has kdim = 9) run entirely in
        // the vector loop; the padding codes stay zero and add nothing to
        // the exact integer sum.
        let kpad = kdim.next_multiple_of(intgemm::vector_width());
        let per_sample_out = self.out_channels * oh * ow;
        let oc_n = self.out_channels;
        let bias = self.bias.value.as_slice();
        scratch::with_buffer_i16(SlotI16::Act, |xq| {
            scratch::with_buffer_i16(SlotI16::Weight, |wq| {
                let scale_x = intgemm::quantize_i16(x, spec.act_steps, xq);
                let scale_w =
                    intgemm::quantize_i16(self.weight.value.as_slice(), spec.weight_steps, wq);
                let scale = scale_x * scale_w;
                if kpad != kdim {
                    // Spread the weight rows to the padded stride in place,
                    // back to front (destinations never precede sources).
                    wq.resize(oc_n * kpad, 0);
                    for oc in (0..oc_n).rev() {
                        for r in (0..kdim).rev() {
                            wq[oc * kpad + r] = wq[oc * kdim + r];
                        }
                        wq[oc * kpad + kdim..(oc + 1) * kpad].fill(0);
                    }
                }
                let (xq, wq): (&[i16], &[i16]) = (xq, wq);
                let chunks = map_blocks(n, BATCH_BLOCK, self.threads > 1, |start, end| {
                    let block_len = end - start;
                    let ncols = block_len * oh * ow;
                    scratch::with_buffer_i16(SlotI16::Col, |colt| {
                        colt.clear();
                        colt.resize(ncols * kpad, 0);
                        for s in start..end {
                            self.im2col_t(xq, s, h, w, oh, ow, colt, (s - start) * oh * ow, kpad);
                        }
                        scratch::with_buffer_i32(SlotI32::Acc, |acc| {
                            acc.clear();
                            acc.resize(oc_n * ncols, 0);
                            // C[oc][cols] = W[oc][kpad] · colTᵀ.
                            intgemm::matmul_i16_a_bt(wq, colt, acc, oc_n, kpad, ncols);
                            let mut out = vec![0.0f32; block_len * per_sample_out];
                            for si in 0..block_len {
                                for oc in 0..oc_n {
                                    let src = &acc[oc * ncols + si * oh * ow..][..oh * ow];
                                    let dst =
                                        &mut out[si * per_sample_out + oc * oh * ow..][..oh * ow];
                                    let b = bias[oc];
                                    for (d, &v) in dst.iter_mut().zip(src) {
                                        *d = v as f32 * scale + b;
                                    }
                                }
                            }
                            out
                        })
                    })
                });
                let mut data = Vec::with_capacity(n * per_sample_out);
                for chunk in chunks {
                    data.extend_from_slice(&chunk);
                }
                data
            })
        })
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NeuroError> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(NeuroError::ShapeMismatch {
                context: "Conv2d::forward expects [N, C_in, H, W]",
                expected: vec![0, self.in_channels, 0, 0],
                actual: shape.to_vec(),
            });
        }
        Ok((shape[0], shape[2], shape[3]))
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NeuroError> {
        let (n, h, w) = self.check_input(input)?;
        let (oh, ow) = self.output_hw(h, w)?;
        let kdim = self.in_channels * self.kernel * self.kernel;
        let x = input.as_slice();

        // Dispatch: integer datapath (quantized inference) first, then the
        // FFT shape dispatch, then the im2col GEMM default. Training
        // always runs im2col — its backward recomputes the same patches.
        let data = if !train
            && self
                .int_mode
                .is_some_and(|s| s.is_valid() && s.accumulator_safe(kdim))
        {
            let spec = self.int_mode.expect("checked above");
            self.forward_int(x, spec, n, h, w, oh, ow)
        } else {
            let requested = match self.conv_impl {
                ConvImpl::Auto => env_conv_impl(),
                pinned => pinned,
            };
            let fft_tile = if train || self.stride != 1 || self.kernel < 2 {
                None
            } else {
                match requested {
                    ConvImpl::Fft => self.fft_candidate(h, w, n).map(|(_, p)| p),
                    ConvImpl::Im2col => None,
                    ConvImpl::Auto => self.fft_auto_tile(h, w, oh, ow, n),
                }
            };
            match fft_tile {
                Some(p) => self.forward_fft(x, n, h, w, oh, ow, p),
                None => self.forward_im2col(x, n, h, w, oh, ow),
            }
        };

        self.cached_input = Some(input.clone());
        Tensor::from_vec(vec![n, self.out_channels, oh, ow], data)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let input = self.cached_input.take().ok_or(NeuroError::ShapeMismatch {
            context: "Conv2d::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        let (n, h, w) = self.check_input(&input)?;
        let (oh, ow) = self.output_hw(h, w)?;
        let kdim = self.in_channels * self.kernel * self.kernel;
        let expected = vec![n, self.out_channels, oh, ow];
        if grad_output.shape() != expected.as_slice() {
            return Err(NeuroError::ShapeMismatch {
                context: "Conv2d::backward",
                expected,
                actual: grad_output.shape().to_vec(),
            });
        }

        let x = input.as_slice();
        let weight = self.weight.value.as_slice();
        let go = grad_output.as_slice();
        let per_sample_in = self.in_channels * h * w;
        let per_sample_out = self.out_channels * oh * ow;

        // Each fixed-size batch block accumulates private dW/db plus its
        // slice of dX; the blocks then reduce in index order, so the sum
        // order — and the result, bit for bit — does not depend on how many
        // workers ran them.
        let partials = map_blocks(n, BATCH_BLOCK, self.threads > 1, |start, end| {
            let block_len = end - start;
            let ncols = block_len * oh * ow;
            scratch::with_buffer(Slot::Col, |col| {
                scratch::with_buffer(Slot::GradCol, |grad_col| {
                    scratch::with_buffer(Slot::YBlock, |go_block| {
                        // Block im2col, as in forward.
                        col.clear();
                        col.resize(kdim * ncols, 0.0);
                        for s in start..end {
                            self.im2col(x, s, h, w, oh, ow, col, ncols, (s - start) * oh * ow);
                        }
                        // Gather dY into the matching [oc][sample·OH·OW] layout.
                        go_block.clear();
                        go_block.resize(self.out_channels * ncols, 0.0);
                        for (si, s) in (start..end).enumerate() {
                            let go_s = &go[s * per_sample_out..(s + 1) * per_sample_out];
                            for oc in 0..self.out_channels {
                                go_block[oc * ncols + si * oh * ow..][..oh * ow]
                                    .copy_from_slice(&go_s[oc * oh * ow..(oc + 1) * oh * ow]);
                            }
                        }
                        let mut dw = vec![0.0f32; self.out_channels * kdim];
                        let mut db = vec![0.0f32; self.out_channels];
                        let mut dx = vec![0.0f32; block_len * per_sample_in];
                        // dW += dY · colᵀ — one GEMM over the whole block.
                        matmul_a_bt(go_block, col, &mut dw, self.out_channels, ncols, kdim);
                        // db += row sums of dY, straight off the gathered
                        // [oc][sample·OH·OW] rows (same element order as the
                        // per-sample walk, so numerics are unchanged).
                        for (oc, db_oc) in db.iter_mut().enumerate() {
                            *db_oc += go_block[oc * ncols..(oc + 1) * ncols].iter().sum::<f32>();
                        }
                        // dCol = Wᵀ · dY — one GEMM — then scatter per sample.
                        grad_col.clear();
                        grad_col.resize(kdim * ncols, 0.0);
                        matmul_at_b(weight, go_block, grad_col, kdim, self.out_channels, ncols);
                        for (si, _) in (start..end).enumerate() {
                            let dx_view = &mut dx[si * per_sample_in..(si + 1) * per_sample_in];
                            // col2im indexes sample 0 of the view; the block
                            // column offset selects the right columns.
                            self.col2im(grad_col, 0, h, w, oh, ow, dx_view, ncols, si * oh * ow);
                        }
                        (dw, db, dx)
                    })
                })
            })
        });

        let mut grad_input = vec![0.0f32; n * per_sample_in];
        let mut offset = 0;
        for (dw, db, dx) in partials {
            for (g, v) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
                *g += v;
            }
            for (g, v) in self.bias.grad.as_mut_slice().iter_mut().zip(&db) {
                *g += v;
            }
            grad_input[offset..offset + dx.len()].copy_from_slice(&dx);
            offset += dx.len();
        }
        Tensor::from_vec(vec![n, self.in_channels, h, w], grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }

    fn set_int_mode(&mut self, spec: Option<IntSpec>) {
        self.int_mode = spec;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_path_matches_im2col() {
        let x = Tensor::from_vec(
            vec![2, 3, 9, 9],
            (0..486).map(|i| ((i as f32) * 0.171).sin()).collect(),
        )
        .unwrap();
        let mut base = Conv2d::new(3, 4, 3, 11)
            .unwrap()
            .with_conv_impl(ConvImpl::Im2col);
        let mut freq = Conv2d::new(3, 4, 3, 11)
            .unwrap()
            .with_conv_impl(ConvImpl::Fft);
        let y_base = base.forward(&x, false).unwrap();
        let y_freq = freq.forward(&x, false).unwrap();
        assert_eq!(y_base.shape(), y_freq.shape());
        for (a, b) in y_base.as_slice().iter().zip(y_freq.as_slice()) {
            assert!((a - b).abs() < 2e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn fft_path_matches_im2col_without_padding_and_large_kernel() {
        let x = Tensor::from_vec(
            vec![1, 2, 12, 12],
            (0..288).map(|i| ((i as f32) * 0.37).cos()).collect(),
        )
        .unwrap();
        let mk = |imp| {
            Conv2d::new(2, 3, 5, 23)
                .unwrap()
                .with_padding(0)
                .with_conv_impl(imp)
        };
        let y_base = mk(ConvImpl::Im2col).forward(&x, false).unwrap();
        let y_freq = mk(ConvImpl::Fft).forward(&x, false).unwrap();
        for (a, b) in y_base.as_slice().iter().zip(y_freq.as_slice()) {
            assert!((a - b).abs() < 2e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn forced_fft_on_strided_layer_falls_back_to_im2col() {
        let x =
            Tensor::from_vec(vec![1, 1, 8, 8], (0..64).map(|i| i as f32 * 0.05).collect()).unwrap();
        let mut strided = Conv2d::new(1, 2, 3, 5)
            .unwrap()
            .with_stride(2)
            .unwrap()
            .with_conv_impl(ConvImpl::Fft);
        let mut plain = Conv2d::new(1, 2, 3, 5).unwrap().with_stride(2).unwrap();
        let a = strided.forward(&x, false).unwrap();
        let b = plain.forward(&x, false).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn int_mode_approximates_float_forward() {
        let x = Tensor::from_vec(
            vec![2, 2, 6, 6],
            (0..144).map(|i| ((i as f32) * 0.23).sin()).collect(),
        )
        .unwrap();
        let mut float_conv = Conv2d::new(2, 3, 3, 7).unwrap();
        let mut int_conv = float_conv.clone();
        int_conv.set_int_mode(Some(IntSpec {
            act_steps: 2047,
            weight_steps: 2047,
        }));
        let yf = float_conv.forward(&x, false).unwrap();
        let yi = int_conv.forward(&x, false).unwrap();
        for (a, b) in yf.as_slice().iter().zip(yi.as_slice()) {
            assert!((a - b).abs() < 5e-3, "{a} vs {b}");
        }
        // Training ignores int mode entirely.
        let yt = int_conv.forward(&x, true).unwrap();
        assert_eq!(yf.as_slice(), yt.as_slice());
    }

    #[test]
    fn int_mode_is_bit_stable_across_thread_counts() {
        let x = Tensor::from_vec(
            vec![6, 2, 5, 5],
            (0..300).map(|i| ((i as f32) * 0.41).cos()).collect(),
        )
        .unwrap();
        let spec = Some(IntSpec {
            act_steps: 127,
            weight_steps: 127,
        });
        let mut c1 = Conv2d::new(2, 3, 3, 5).unwrap().with_threads(1);
        let mut c4 = Conv2d::new(2, 3, 3, 5).unwrap().with_threads(4);
        c1.set_int_mode(spec);
        c4.set_int_mode(spec);
        let y1 = c1.forward(&x, false).unwrap();
        let y4 = c4.forward(&x, false).unwrap();
        assert_eq!(y1.as_slice(), y4.as_slice());
    }

    #[test]
    fn same_padding_preserves_spatial_size() {
        let mut conv = Conv2d::new(2, 3, 3, 1).unwrap();
        let y = conv
            .forward(&Tensor::zeros(vec![1, 2, 7, 7]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 3, 7, 7]);
    }

    #[test]
    fn stride_two_halves_spatial_size() {
        let mut conv = Conv2d::new(1, 1, 3, 1).unwrap().with_stride(2).unwrap();
        let y = conv
            .forward(&Tensor::zeros(vec![1, 1, 8, 8]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn known_kernel_computes_correct_value() {
        // A 1×1 "identity-scaling" kernel: weight 2.0, bias 1.0.
        let mut conv = Conv2d::new(1, 1, 1, 1).unwrap().with_padding(0);
        conv.weight.value.as_mut_slice()[0] = 2.0;
        conv.bias.value.as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn three_by_three_sum_kernel() {
        // All-ones 3×3 kernel with zero padding sums each neighbourhood.
        let mut conv = Conv2d::new(1, 1, 3, 1).unwrap().with_padding(0);
        conv.weight.value.fill(1.0);
        let x =
            Tensor::from_vec(vec![1, 1, 3, 3], vec![1., 1., 1., 1., 1., 1., 1., 1., 1.]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.as_slice()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let mut conv = Conv2d::new(3, 4, 3, 1).unwrap();
        assert!(conv
            .forward(&Tensor::zeros(vec![1, 2, 8, 8]), false)
            .is_err());
    }

    #[test]
    fn backward_shapes_match_input() {
        let mut conv = Conv2d::new(2, 4, 3, 7).unwrap();
        let x = Tensor::zeros(vec![3, 2, 6, 6]);
        let y = conv.forward(&x, true).unwrap();
        let gx = conv.backward(&Tensor::zeros(y.shape().to_vec())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let x = Tensor::from_vec(
            vec![4, 2, 5, 5],
            (0..200).map(|i| (i as f32 * 0.13).sin()).collect(),
        )
        .unwrap();
        let mut c1 = Conv2d::new(2, 3, 3, 5).unwrap().with_threads(1);
        let mut c2 = Conv2d::new(2, 3, 3, 5).unwrap().with_threads(2);
        let y1 = c1.forward(&x, true).unwrap();
        let y2 = c2.forward(&x, true).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        let g = Tensor::full(y1.shape().to_vec(), 0.5);
        let gx1 = c1.backward(&g).unwrap();
        let gx2 = c2.backward(&g).unwrap();
        for (a, b) in gx1.as_slice().iter().zip(gx2.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        for (p1, p2) in c1.params().iter().zip(c2.params().iter()) {
            for (a, b) in p1.grad.as_slice().iter().zip(p2.grad.as_slice()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }
}

//! 2-D convolution via im2col and the blocked matrix kernels.

use crate::init::he_normal;
use crate::layers::{Layer, Param};
use crate::linalg::{matmul, matmul_a_bt, matmul_at_b};
use crate::parallel::map_blocks;
use crate::rng::SimRng;
use crate::scratch::{self, Slot};
use crate::{NeuroError, Tensor};

/// Samples per parallel work block. The block layout depends only on the
/// batch size, never on the thread count, so per-block gradient reductions
/// combine in a fixed order and backward results are bitwise stable across
/// thread counts.
const BATCH_BLOCK: usize = 4;

/// A 2-D convolution over `[N, C, H, W]` batches.
///
/// Weights are stored as `[out_channels, in_channels·k·k]` — the im2col
/// layout — so the forward pass is one matrix product per sample. The
/// backward pass recomputes the im2col buffer instead of caching it, trading
/// a little compute for a much smaller memory footprint.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Conv2d, Layer, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut conv = Conv2d::new(1, 4, 3, 42)?; // 1→4 channels, 3×3, "same"
/// let x = Tensor::zeros(vec![2, 1, 8, 8]);
/// let y = conv.forward(&x, false)?;
/// assert_eq!(y.shape(), &[2, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    threads: usize,
    weight: Param,
    bias: Param,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a `kernel × kernel` convolution from `in_channels` to
    /// `out_channels` with stride 1 and "same" padding (`kernel / 2`),
    /// He-initialized from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when any dimension is zero.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        seed: u64,
    ) -> Result<Self, NeuroError> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "conv2d dimensions",
                value: 0.0,
            });
        }
        let fan_in = in_channels * kernel * kernel;
        let mut rng = SimRng::seed_from(seed);
        let weight = he_normal(vec![out_channels, fan_in], fan_in, &mut rng);
        Ok(Self {
            in_channels,
            out_channels,
            kernel,
            stride: 1,
            padding: kernel / 2,
            threads: 2,
            weight: Param::new(weight, true),
            bias: Param::new(Tensor::zeros(vec![out_channels]), false),
            cached_input: None,
        })
    }

    /// Sets the stride.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] when `stride == 0`.
    pub fn with_stride(mut self, stride: usize) -> Result<Self, NeuroError> {
        if stride == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "stride",
                value: 0.0,
            });
        }
        self.stride = stride;
        Ok(self)
    }

    /// Sets the zero padding on every side.
    #[must_use]
    pub fn with_padding(mut self, padding: usize) -> Self {
        self.padding = padding;
        self
    }

    /// Sets the worker-thread count used for batch-parallel passes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Number of input channels.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Total trainable parameters (weights + biases).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weight.value.len() + self.bias.value.len()
    }

    /// Output spatial size for an input of `h × w`.
    fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize), NeuroError> {
        let he = h + 2 * self.padding;
        let we = w + 2 * self.padding;
        if he < self.kernel || we < self.kernel {
            return Err(NeuroError::ShapeMismatch {
                context: "Conv2d input smaller than kernel",
                expected: vec![self.kernel, self.kernel],
                actual: vec![h, w],
            });
        }
        Ok((
            (he - self.kernel) / self.stride + 1,
            (we - self.kernel) / self.stride + 1,
        ))
    }

    /// Gathers sample `n`'s receptive fields into the block im2col buffer:
    /// row `r` of the logical `[K][ld]` matrix starts at `col[r*ld]`, and
    /// this sample's `OH·OW` columns start at `offset`. The buffer must be
    /// pre-zeroed (padding cells are simply left untouched).
    #[allow(clippy::too_many_arguments)]
    fn im2col(
        &self,
        input: &[f32],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        col: &mut [f32],
        ld: usize,
        offset: usize,
    ) {
        let k = self.kernel;
        let sample = &input[n * self.in_channels * h * w..];
        for ic in 0..self.in_channels {
            let plane = &sample[ic * h * w..(ic + 1) * h * w];
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ic * k + kh) * k + kw;
                    let out_row = &mut col[row * ld + offset..row * ld + offset + oh * ow];
                    for oy in 0..oh {
                        let iy = oy * self.stride + kh;
                        if iy < self.padding || iy >= h + self.padding {
                            continue;
                        }
                        let iy = iy - self.padding;
                        for ox in 0..ow {
                            let ix = ox * self.stride + kw;
                            if ix < self.padding || ix >= w + self.padding {
                                continue;
                            }
                            out_row[oy * ow + ox] = plane[iy * w + (ix - self.padding)];
                        }
                    }
                }
            }
        }
    }

    /// Scatters `col`-layout gradients (same `[K][ld]` layout and sample
    /// `offset` as [`Self::im2col`]) back into sample `n` of `grad_input`.
    #[allow(clippy::too_many_arguments)]
    fn col2im(
        &self,
        col: &[f32],
        n: usize,
        h: usize,
        w: usize,
        oh: usize,
        ow: usize,
        grad_input: &mut [f32],
        ld: usize,
        offset: usize,
    ) {
        let k = self.kernel;
        let sample = &mut grad_input[n * self.in_channels * h * w..];
        for ic in 0..self.in_channels {
            for kh in 0..k {
                for kw in 0..k {
                    let row = (ic * k + kh) * k + kw;
                    let col_row = &col[row * ld + offset..row * ld + offset + oh * ow];
                    for oy in 0..oh {
                        let iy = oy * self.stride + kh;
                        if iy < self.padding || iy >= h + self.padding {
                            continue;
                        }
                        let iy = iy - self.padding;
                        for ox in 0..ow {
                            let ix = ox * self.stride + kw;
                            if ix < self.padding || ix >= w + self.padding {
                                continue;
                            }
                            sample[(ic * h + iy) * w + (ix - self.padding)] +=
                                col_row[oy * ow + ox];
                        }
                    }
                }
            }
        }
    }

    fn check_input(&self, input: &Tensor) -> Result<(usize, usize, usize), NeuroError> {
        let shape = input.shape();
        if shape.len() != 4 || shape[1] != self.in_channels {
            return Err(NeuroError::ShapeMismatch {
                context: "Conv2d::forward expects [N, C_in, H, W]",
                expected: vec![0, self.in_channels, 0, 0],
                actual: shape.to_vec(),
            });
        }
        Ok((shape[0], shape[2], shape[3]))
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor, NeuroError> {
        let (n, h, w) = self.check_input(input)?;
        let (oh, ow) = self.output_hw(h, w)?;
        let kdim = self.in_channels * self.kernel * self.kernel;
        let per_sample_out = self.out_channels * oh * ow;

        let x = input.as_slice();
        let weight = self.weight.value.as_slice();
        let bias = self.bias.value.as_slice();

        // Per-block workers gather a whole block of samples into one wide
        // im2col matrix and run a single GEMM over it (`N = block·OH·OW`),
        // so panel packing amortizes across batch items; the buffers come
        // from the thread's scratch arena instead of fresh allocations.
        let chunks = map_blocks(n, BATCH_BLOCK, self.threads > 1, |start, end| {
            let block_len = end - start;
            let ncols = block_len * oh * ow;
            scratch::with_buffer(Slot::Col, |col| {
                col.clear();
                col.resize(kdim * ncols, 0.0);
                for s in start..end {
                    self.im2col(x, s, h, w, oh, ow, col, ncols, (s - start) * oh * ow);
                }
                scratch::with_buffer(Slot::OutBlock, |gemm_out| {
                    gemm_out.clear();
                    gemm_out.resize(self.out_channels * ncols, 0.0);
                    matmul(weight, col, gemm_out, self.out_channels, kdim, ncols);
                    // Scatter [oc][sample·OH·OW] → [sample][oc][OH·OW], adding bias.
                    let mut out = vec![0.0f32; block_len * per_sample_out];
                    for si in 0..block_len {
                        for oc in 0..self.out_channels {
                            let src = &gemm_out[oc * ncols + si * oh * ow..][..oh * ow];
                            let dst = &mut out[si * per_sample_out + oc * oh * ow..][..oh * ow];
                            let b = bias[oc];
                            for (d, &v) in dst.iter_mut().zip(src) {
                                *d = v + b;
                            }
                        }
                    }
                    out
                })
            })
        });

        let mut data = Vec::with_capacity(n * per_sample_out);
        for chunk in chunks {
            data.extend_from_slice(&chunk);
        }
        self.cached_input = Some(input.clone());
        Tensor::from_vec(vec![n, self.out_channels, oh, ow], data)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let input = self.cached_input.take().ok_or(NeuroError::ShapeMismatch {
            context: "Conv2d::backward before forward",
            expected: vec![],
            actual: vec![],
        })?;
        let (n, h, w) = self.check_input(&input)?;
        let (oh, ow) = self.output_hw(h, w)?;
        let kdim = self.in_channels * self.kernel * self.kernel;
        let expected = vec![n, self.out_channels, oh, ow];
        if grad_output.shape() != expected.as_slice() {
            return Err(NeuroError::ShapeMismatch {
                context: "Conv2d::backward",
                expected,
                actual: grad_output.shape().to_vec(),
            });
        }

        let x = input.as_slice();
        let weight = self.weight.value.as_slice();
        let go = grad_output.as_slice();
        let per_sample_in = self.in_channels * h * w;
        let per_sample_out = self.out_channels * oh * ow;

        // Each fixed-size batch block accumulates private dW/db plus its
        // slice of dX; the blocks then reduce in index order, so the sum
        // order — and the result, bit for bit — does not depend on how many
        // workers ran them.
        let partials = map_blocks(n, BATCH_BLOCK, self.threads > 1, |start, end| {
            let block_len = end - start;
            let ncols = block_len * oh * ow;
            scratch::with_buffer(Slot::Col, |col| {
                scratch::with_buffer(Slot::GradCol, |grad_col| {
                    scratch::with_buffer(Slot::YBlock, |go_block| {
                        // Block im2col, as in forward.
                        col.clear();
                        col.resize(kdim * ncols, 0.0);
                        for s in start..end {
                            self.im2col(x, s, h, w, oh, ow, col, ncols, (s - start) * oh * ow);
                        }
                        // Gather dY into the matching [oc][sample·OH·OW] layout.
                        go_block.clear();
                        go_block.resize(self.out_channels * ncols, 0.0);
                        for (si, s) in (start..end).enumerate() {
                            let go_s = &go[s * per_sample_out..(s + 1) * per_sample_out];
                            for oc in 0..self.out_channels {
                                go_block[oc * ncols + si * oh * ow..][..oh * ow]
                                    .copy_from_slice(&go_s[oc * oh * ow..(oc + 1) * oh * ow]);
                            }
                        }
                        let mut dw = vec![0.0f32; self.out_channels * kdim];
                        let mut db = vec![0.0f32; self.out_channels];
                        let mut dx = vec![0.0f32; block_len * per_sample_in];
                        // dW += dY · colᵀ — one GEMM over the whole block.
                        matmul_a_bt(go_block, col, &mut dw, self.out_channels, ncols, kdim);
                        // db += row sums of dY, straight off the gathered
                        // [oc][sample·OH·OW] rows (same element order as the
                        // per-sample walk, so numerics are unchanged).
                        for (oc, db_oc) in db.iter_mut().enumerate() {
                            *db_oc += go_block[oc * ncols..(oc + 1) * ncols].iter().sum::<f32>();
                        }
                        // dCol = Wᵀ · dY — one GEMM — then scatter per sample.
                        grad_col.clear();
                        grad_col.resize(kdim * ncols, 0.0);
                        matmul_at_b(weight, go_block, grad_col, kdim, self.out_channels, ncols);
                        for (si, _) in (start..end).enumerate() {
                            let dx_view = &mut dx[si * per_sample_in..(si + 1) * per_sample_in];
                            // col2im indexes sample 0 of the view; the block
                            // column offset selects the right columns.
                            self.col2im(grad_col, 0, h, w, oh, ow, dx_view, ncols, si * oh * ow);
                        }
                        (dw, db, dx)
                    })
                })
            })
        });

        let mut grad_input = vec![0.0f32; n * per_sample_in];
        let mut offset = 0;
        for (dw, db, dx) in partials {
            for (g, v) in self.weight.grad.as_mut_slice().iter_mut().zip(&dw) {
                *g += v;
            }
            for (g, v) in self.bias.grad.as_mut_slice().iter_mut().zip(&db) {
                *g += v;
            }
            grad_input[offset..offset + dx.len()].copy_from_slice(&dx);
            offset += dx.len();
        }
        Tensor::from_vec(vec![n, self.in_channels, h, w], grad_input)
    }

    fn params_mut(&mut self) -> Vec<&mut Param> {
        vec![&mut self.weight, &mut self.bias]
    }

    fn params(&self) -> Vec<&Param> {
        vec![&self.weight, &self.bias]
    }

    fn clone_box(&self) -> Box<dyn Layer> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_spatial_size() {
        let mut conv = Conv2d::new(2, 3, 3, 1).unwrap();
        let y = conv
            .forward(&Tensor::zeros(vec![1, 2, 7, 7]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 3, 7, 7]);
    }

    #[test]
    fn stride_two_halves_spatial_size() {
        let mut conv = Conv2d::new(1, 1, 3, 1).unwrap().with_stride(2).unwrap();
        let y = conv
            .forward(&Tensor::zeros(vec![1, 1, 8, 8]), false)
            .unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
    }

    #[test]
    fn known_kernel_computes_correct_value() {
        // A 1×1 "identity-scaling" kernel: weight 2.0, bias 1.0.
        let mut conv = Conv2d::new(1, 1, 1, 1).unwrap().with_padding(0);
        conv.weight.value.as_mut_slice()[0] = 2.0;
        conv.bias.value.as_mut_slice()[0] = 1.0;
        let x = Tensor::from_vec(vec![1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.as_slice(), &[3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn three_by_three_sum_kernel() {
        // All-ones 3×3 kernel with zero padding sums each neighbourhood.
        let mut conv = Conv2d::new(1, 1, 3, 1).unwrap().with_padding(0);
        conv.weight.value.fill(1.0);
        let x =
            Tensor::from_vec(vec![1, 1, 3, 3], vec![1., 1., 1., 1., 1., 1., 1., 1., 1.]).unwrap();
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[1, 1, 1, 1]);
        assert!((y.as_slice()[0] - 9.0).abs() < 1e-6);
    }

    #[test]
    fn wrong_channel_count_is_rejected() {
        let mut conv = Conv2d::new(3, 4, 3, 1).unwrap();
        assert!(conv
            .forward(&Tensor::zeros(vec![1, 2, 8, 8]), false)
            .is_err());
    }

    #[test]
    fn backward_shapes_match_input() {
        let mut conv = Conv2d::new(2, 4, 3, 7).unwrap();
        let x = Tensor::zeros(vec![3, 2, 6, 6]);
        let y = conv.forward(&x, true).unwrap();
        let gx = conv.backward(&Tensor::zeros(y.shape().to_vec())).unwrap();
        assert_eq!(gx.shape(), x.shape());
    }

    #[test]
    fn parallel_and_serial_agree() {
        let x = Tensor::from_vec(
            vec![4, 2, 5, 5],
            (0..200).map(|i| (i as f32 * 0.13).sin()).collect(),
        )
        .unwrap();
        let mut c1 = Conv2d::new(2, 3, 3, 5).unwrap().with_threads(1);
        let mut c2 = Conv2d::new(2, 3, 3, 5).unwrap().with_threads(2);
        let y1 = c1.forward(&x, true).unwrap();
        let y2 = c2.forward(&x, true).unwrap();
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
        let g = Tensor::full(y1.shape().to_vec(), 0.5);
        let gx1 = c1.backward(&g).unwrap();
        let gx2 = c2.backward(&g).unwrap();
        for (a, b) in gx1.as_slice().iter().zip(gx2.as_slice()) {
            assert!((a - b).abs() < 1e-5);
        }
        for (p1, p2) in c1.params().iter().zip(c2.params().iter()) {
            for (a, b) in p1.grad.as_slice().iter().zip(p2.grad.as_slice()) {
                assert!((a - b).abs() < 1e-4);
            }
        }
    }
}

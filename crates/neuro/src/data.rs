//! Datasets and batching.

use crate::{NeuroError, Tensor};

/// A supervised image-classification dataset.
///
/// Items are `(image, label)` pairs; images are CHW tensors of identical
/// shape across the dataset.
pub trait Dataset: Send + Sync {
    /// Number of items.
    fn len(&self) -> usize;

    /// Whether the dataset is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `index`-th `(image, label)` pair.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidDataset`] for an out-of-range index.
    fn item(&self, index: usize) -> Result<(Tensor, usize), NeuroError>;

    /// Shape of each image (CHW).
    fn image_shape(&self) -> Vec<usize>;

    /// Number of classes.
    fn classes(&self) -> usize;

    /// Collates items `indices` into an `[N, C, H, W]` batch plus labels.
    ///
    /// # Errors
    ///
    /// Propagates [`NeuroError::InvalidDataset`] from item access.
    fn batch(&self, indices: &[usize]) -> Result<(Tensor, Vec<usize>), NeuroError> {
        let shape = self.image_shape();
        let item_len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(indices.len() * item_len);
        let mut labels = Vec::with_capacity(indices.len());
        for &i in indices {
            let (img, label) = self.item(i)?;
            if img.shape() != shape.as_slice() {
                return Err(NeuroError::InvalidDataset {
                    context: "item shape differs from dataset image shape",
                });
            }
            data.extend_from_slice(img.as_slice());
            labels.push(label);
        }
        let mut batch_shape = vec![indices.len()];
        batch_shape.extend_from_slice(&shape);
        Ok((Tensor::from_vec(batch_shape, data)?, labels))
    }
}

/// A dataset held entirely in memory.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Dataset, InMemoryDataset, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let images = vec![Tensor::zeros(vec![1, 2, 2]); 4];
/// let labels = vec![0, 1, 0, 1];
/// let data = InMemoryDataset::new(images, labels)?;
/// assert_eq!(data.len(), 4);
/// assert_eq!(data.classes(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct InMemoryDataset {
    images: Vec<Tensor>,
    labels: Vec<usize>,
    classes: usize,
}

impl InMemoryDataset {
    /// Wraps parallel image/label vectors.
    ///
    /// The class count is inferred as `max(label) + 1`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidDataset`] when the vectors differ in
    /// length, are empty, or images disagree in shape.
    pub fn new(images: Vec<Tensor>, labels: Vec<usize>) -> Result<Self, NeuroError> {
        if images.len() != labels.len() {
            return Err(NeuroError::InvalidDataset {
                context: "images and labels differ in length",
            });
        }
        if images.is_empty() {
            return Err(NeuroError::InvalidDataset {
                context: "dataset is empty",
            });
        }
        let shape = images[0].shape().to_vec();
        if images.iter().any(|i| i.shape() != shape.as_slice()) {
            return Err(NeuroError::InvalidDataset {
                context: "inconsistent image shapes",
            });
        }
        let classes = labels.iter().copied().max().unwrap_or(0) + 1;
        Ok(Self {
            images,
            labels,
            classes,
        })
    }
}

impl Dataset for InMemoryDataset {
    fn len(&self) -> usize {
        self.images.len()
    }

    fn item(&self, index: usize) -> Result<(Tensor, usize), NeuroError> {
        if index >= self.images.len() {
            return Err(NeuroError::InvalidDataset {
                context: "item index out of range",
            });
        }
        Ok((self.images[index].clone(), self.labels[index]))
    }

    fn image_shape(&self) -> Vec<usize> {
        self.images[0].shape().to_vec()
    }

    fn classes(&self) -> usize {
        self.classes
    }
}

/// A view over a subset of another dataset (train/validation splits).
///
/// # Example
///
/// ```
/// use safelight_neuro::{Dataset, InMemoryDataset, Subset, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let base = InMemoryDataset::new(vec![Tensor::zeros(vec![1, 1, 1]); 10], (0..10).map(|i| i % 2).collect())?;
/// let front = Subset::new(&base, (0..5).collect())?;
/// assert_eq!(front.len(), 5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Subset<'a, D: Dataset> {
    base: &'a D,
    indices: Vec<usize>,
}

impl<'a, D: Dataset> Subset<'a, D> {
    /// Creates a view over `indices` of `base`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidDataset`] when an index is out of range
    /// or the subset is empty.
    pub fn new(base: &'a D, indices: Vec<usize>) -> Result<Self, NeuroError> {
        if indices.is_empty() {
            return Err(NeuroError::InvalidDataset {
                context: "subset is empty",
            });
        }
        if indices.iter().any(|&i| i >= base.len()) {
            return Err(NeuroError::InvalidDataset {
                context: "subset index out of range",
            });
        }
        Ok(Self { base, indices })
    }
}

impl<D: Dataset> Dataset for Subset<'_, D> {
    fn len(&self) -> usize {
        self.indices.len()
    }

    fn item(&self, index: usize) -> Result<(Tensor, usize), NeuroError> {
        let &mapped = self.indices.get(index).ok_or(NeuroError::InvalidDataset {
            context: "item index out of range",
        })?;
        self.base.item(mapped)
    }

    fn image_shape(&self) -> Vec<usize> {
        self.base.image_shape()
    }

    fn classes(&self) -> usize {
        self.base.classes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> InMemoryDataset {
        let images = (0..6)
            .map(|i| Tensor::full(vec![1, 2, 2], i as f32))
            .collect();
        InMemoryDataset::new(images, vec![0, 1, 2, 0, 1, 2]).unwrap()
    }

    #[test]
    fn classes_inferred_from_labels() {
        assert_eq!(tiny().classes(), 3);
    }

    #[test]
    fn batch_stacks_images_in_order() {
        let data = tiny();
        let (batch, labels) = data.batch(&[4, 1]).unwrap();
        assert_eq!(batch.shape(), &[2, 1, 2, 2]);
        assert_eq!(labels, vec![1, 1]);
        assert_eq!(batch.as_slice()[0], 4.0);
        assert_eq!(batch.as_slice()[4], 1.0);
    }

    #[test]
    fn mismatched_lengths_are_rejected() {
        let images = vec![Tensor::zeros(vec![1, 1, 1]); 2];
        assert!(InMemoryDataset::new(images, vec![0]).is_err());
    }

    #[test]
    fn inconsistent_shapes_are_rejected() {
        let images = vec![Tensor::zeros(vec![1, 1, 1]), Tensor::zeros(vec![1, 2, 2])];
        assert!(InMemoryDataset::new(images, vec![0, 1]).is_err());
    }

    #[test]
    fn subset_remaps_indices() {
        let base = tiny();
        let sub = Subset::new(&base, vec![5, 0]).unwrap();
        let (img, label) = sub.item(0).unwrap();
        assert_eq!(label, 2);
        assert_eq!(img.as_slice()[0], 5.0);
    }

    #[test]
    fn subset_validates_indices() {
        let base = tiny();
        assert!(Subset::new(&base, vec![9]).is_err());
        assert!(Subset::new(&base, vec![]).is_err());
    }
}

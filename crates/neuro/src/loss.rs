//! Softmax cross-entropy loss.

use crate::{NeuroError, Tensor};

/// Row-wise softmax of a `[N, C]` logits tensor.
///
/// # Errors
///
/// Returns [`NeuroError::ShapeMismatch`] for tensors that are not rank 2.
///
/// # Example
///
/// ```
/// use safelight_neuro::{softmax, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let logits = Tensor::from_vec(vec![1, 3], vec![0.0, 0.0, 0.0])?;
/// let p = softmax(&logits)?;
/// assert!((p.as_slice()[0] - 1.0 / 3.0).abs() < 1e-6);
/// # Ok(())
/// # }
/// ```
pub fn softmax(logits: &Tensor) -> Result<Tensor, NeuroError> {
    let shape = logits.shape();
    if shape.len() != 2 {
        return Err(NeuroError::ShapeMismatch {
            context: "softmax expects [N, C]",
            expected: vec![0, 0],
            actual: shape.to_vec(),
        });
    }
    let classes = shape[1];
    let mut out = logits.clone();
    for row in out.as_mut_slice().chunks_mut(classes) {
        let max = row.iter().fold(f32::NEG_INFINITY, |a, &b| a.max(b));
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

/// Mean softmax cross-entropy over a batch; returns `(loss, ∂L/∂logits)`.
///
/// The gradient is the classic `softmax(logits) − one_hot(label)`, divided
/// by the batch size, ready to feed into [`Network::backward`].
///
/// # Errors
///
/// Returns [`NeuroError::ShapeMismatch`] when `logits` is not `[N, C]` with
/// `N == labels.len()`, and [`NeuroError::LabelOutOfRange`] for an invalid
/// label.
///
/// [`Network::backward`]: crate::Network::backward
///
/// # Example
///
/// ```
/// use safelight_neuro::{softmax_cross_entropy, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let logits = Tensor::from_vec(vec![1, 2], vec![5.0, -5.0])?;
/// let (loss, grad) = softmax_cross_entropy(&logits, &[0])?;
/// assert!(loss < 0.01);          // confidently correct
/// assert_eq!(grad.shape(), &[1, 2]);
/// # Ok(())
/// # }
/// ```
pub fn softmax_cross_entropy(
    logits: &Tensor,
    labels: &[usize],
) -> Result<(f32, Tensor), NeuroError> {
    let shape = logits.shape();
    if shape.len() != 2 || shape[0] != labels.len() {
        return Err(NeuroError::ShapeMismatch {
            context: "softmax_cross_entropy expects [N, C] with N labels",
            expected: vec![labels.len(), 0],
            actual: shape.to_vec(),
        });
    }
    let classes = shape[1];
    for &l in labels {
        if l >= classes {
            return Err(NeuroError::LabelOutOfRange { label: l, classes });
        }
    }
    let probs = softmax(logits)?;
    let n = labels.len() as f32;
    let mut loss = 0.0f32;
    let mut grad = probs.clone();
    {
        let g = grad.as_mut_slice();
        let p = probs.as_slice();
        for (row, &label) in labels.iter().enumerate() {
            let idx = row * classes + label;
            loss -= p[idx].max(1e-12).ln();
            g[idx] -= 1.0;
        }
    }
    grad.scale(1.0 / n);
    Ok((loss / n, grad))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., -1., 0., 1.]).unwrap();
        let p = softmax(&logits).unwrap();
        for row in p.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = Tensor::from_vec(vec![1, 3], vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(vec![1, 3], vec![101., 102., 103.]).unwrap();
        let pa = softmax(&a).unwrap();
        let pb = softmax(&b).unwrap();
        for (x, y) in pa.as_slice().iter().zip(pb.as_slice()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_logits_give_ln_c_loss() {
        let logits = Tensor::zeros(vec![4, 10]);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 1, 2, 3]).unwrap();
        assert!((loss - 10.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![2, 3], vec![1., -2., 0.5, 3., 0., -1.]).unwrap();
        let (_, grad) = softmax_cross_entropy(&logits, &[2, 0]).unwrap();
        for row in grad.as_slice().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn bad_label_is_rejected() {
        let logits = Tensor::zeros(vec![1, 3]);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[3]),
            Err(NeuroError::LabelOutOfRange {
                label: 3,
                classes: 3
            })
        ));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits =
            Tensor::from_vec(vec![2, 4], vec![0.3, -1.2, 0.7, 0.1, 2.0, 0.0, -0.5, 1.0]).unwrap();
        let labels = [2usize, 0usize];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for i in 0..logits.len() {
            let mut plus = logits.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = logits.clone();
            minus.as_mut_slice()[i] -= eps;
            let (lp, _) = softmax_cross_entropy(&plus, &labels).unwrap();
            let (lm, _) = softmax_cross_entropy(&minus, &labels).unwrap();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad.as_slice()[i]).abs() < 1e-3,
                "logit {i}: numeric {numeric} vs analytic {}",
                grad.as_slice()[i]
            );
        }
    }
}

//! Error type for the neural-network library.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor and network operations.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NeuroError {
    /// A tensor was built or used with inconsistent dimensions.
    ShapeMismatch {
        /// Human-readable description of the violated expectation.
        context: &'static str,
        /// The shape that was expected (or the reference shape).
        expected: Vec<usize>,
        /// The shape that was supplied.
        actual: Vec<usize>,
    },
    /// A layer or trainer parameter was invalid.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Rejected value.
        value: f64,
    },
    /// A dataset was constructed with mismatched images/labels or used with
    /// an out-of-range index.
    InvalidDataset {
        /// Description of the inconsistency.
        context: &'static str,
    },
    /// A label was outside the model's class range.
    LabelOutOfRange {
        /// Offending label.
        label: usize,
        /// Number of classes.
        classes: usize,
    },
    /// A serialized parameter file was malformed or did not match the
    /// network it was loaded into.
    MalformedModelFile {
        /// Description of what went wrong.
        context: String,
    },
    /// An I/O error while reading or writing model parameters.
    Io {
        /// Stringified source error (kept owned so the type stays `Clone`).
        message: String,
    },
}

impl fmt::Display for NeuroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::ShapeMismatch {
                context,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "shape mismatch in {context}: expected {expected:?}, got {actual:?}"
                )
            }
            Self::InvalidParameter { name, value } => {
                write!(f, "invalid value {value} for parameter `{name}`")
            }
            Self::InvalidDataset { context } => write!(f, "invalid dataset: {context}"),
            Self::LabelOutOfRange { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
            Self::MalformedModelFile { context } => {
                write!(f, "malformed model file: {context}")
            }
            Self::Io { message } => write!(f, "i/o error: {message}"),
        }
    }
}

impl Error for NeuroError {}

impl From<std::io::Error> for NeuroError {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NeuroError>();
    }

    #[test]
    fn shape_mismatch_displays_both_shapes() {
        let e = NeuroError::ShapeMismatch {
            context: "matmul",
            expected: vec![2, 3],
            actual: vec![3, 2],
        };
        let s = e.to_string();
        assert!(s.contains("[2, 3]") && s.contains("[3, 2]"));
    }
}

//! Weight initialization schemes.

use crate::rng::SimRng;
use crate::tensor::Tensor;

/// He (Kaiming) normal initialization: `N(0, √(2 / fan_in))`.
///
/// The standard choice for ReLU networks; used by every convolution and
/// dense layer in this crate.
///
/// # Example
///
/// ```
/// use safelight_neuro::{he_normal, SimRng};
///
/// let mut rng = SimRng::seed_from(1);
/// let w = he_normal(vec![16, 9], 9, &mut rng);
/// assert_eq!(w.shape(), &[16, 9]);
/// ```
#[must_use]
pub fn he_normal(shape: Vec<usize>, fan_in: usize, rng: &mut SimRng) -> Tensor {
    let std_dev = (2.0 / fan_in.max(1) as f64).sqrt();
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = rng.gaussian_with(0.0, std_dev) as f32;
    }
    t
}

/// Xavier (Glorot) uniform initialization:
/// `U(−√(6/(fan_in+fan_out)), +√(6/(fan_in+fan_out)))`.
///
/// # Example
///
/// ```
/// use safelight_neuro::{xavier_uniform, SimRng};
///
/// let mut rng = SimRng::seed_from(1);
/// let w = xavier_uniform(vec![4, 4], 4, 4, &mut rng);
/// assert!(w.max_abs() <= (6.0f32 / 8.0).sqrt());
/// ```
#[must_use]
pub fn xavier_uniform(
    shape: Vec<usize>,
    fan_in: usize,
    fan_out: usize,
    rng: &mut SimRng,
) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f64).sqrt();
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = rng.uniform_in(-bound, bound) as f32;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn he_std_tracks_fan_in() {
        let mut rng = SimRng::seed_from(0);
        let w = he_normal(vec![4096], 8, &mut rng);
        let expected = (2.0f32 / 8.0).sqrt();
        assert!((w.rms() - expected).abs() < 0.05, "rms {}", w.rms());
    }

    #[test]
    fn xavier_respects_bound() {
        let mut rng = SimRng::seed_from(0);
        let (fi, fo) = (10, 20);
        let w = xavier_uniform(vec![1000], fi, fo, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(w.max_abs() <= bound + 1e-6);
    }

    #[test]
    fn init_is_deterministic_per_seed() {
        let a = he_normal(vec![32], 4, &mut SimRng::seed_from(5));
        let b = he_normal(vec![32], 4, &mut SimRng::seed_from(5));
        assert_eq!(a.as_slice(), b.as_slice());
    }
}

//! Training loop with L2 regularization and Gaussian noise-aware training —
//! the two software mitigation techniques evaluated by the paper (§V).

use crate::data::Dataset;
use crate::metrics::accuracy;
use crate::model::Network;
use crate::optim::{Sgd, SgdConfig};
use crate::rng::SimRng;
use crate::tensor::Tensor;
use crate::{softmax_cross_entropy, NeuroError};

/// Configuration for [`Trainer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainerConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub learning_rate: f32,
    /// SGD momentum.
    pub momentum: f32,
    /// L2 regularization strength λ (0 disables). This is the paper's
    /// §V.A mitigation: `R(w) = λ/(2m)·Σ‖w‖²` added to the loss.
    pub weight_decay: f32,
    /// Relative Gaussian noise σ for noise-aware training (0 disables).
    /// This is the paper's §V.B mitigation: during each training forward
    /// pass, every weight tensor `W` is perturbed by
    /// `N(0, (σ·rms(W))²)`, gradients are taken at the perturbed point, and
    /// the update is applied to the clean weights — the scheme used for
    /// noise-resilient PCM accelerators (paper ref.\[32\]) with the noise
    /// scale tied to each layer's weight magnitude.
    pub noise_std: f32,
    /// Multiply the learning rate by [`lr_decay_factor`](Self::lr_decay_factor)
    /// every `lr_decay_epochs` epochs (0 disables the schedule).
    pub lr_decay_epochs: usize,
    /// Step-schedule decay factor.
    pub lr_decay_factor: f32,
    /// Seed for shuffling and noise.
    pub seed: u64,
    /// Print one progress line per epoch when true.
    pub verbose: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        Self {
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.05,
            momentum: 0.9,
            weight_decay: 0.0,
            noise_std: 0.0,
            lr_decay_epochs: 0,
            lr_decay_factor: 0.5,
            seed: 0,
            verbose: false,
        }
    }
}

/// Summary of a completed training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy over the training set after the final epoch.
    pub final_train_accuracy: f64,
}

/// Mini-batch SGD trainer.
///
/// # Example
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer with the given configuration.
    #[must_use]
    pub fn new(config: TrainerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &TrainerConfig {
        &self.config
    }

    /// Trains `network` on `data`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::InvalidParameter`] for a zero batch size or
    /// epoch count, and propagates dataset/layer errors.
    pub fn fit<D: Dataset + ?Sized>(
        &self,
        network: &mut Network,
        data: &D,
    ) -> Result<TrainReport, NeuroError> {
        let cfg = &self.config;
        if cfg.batch_size == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "batch_size",
                value: 0.0,
            });
        }
        if cfg.epochs == 0 {
            return Err(NeuroError::InvalidParameter {
                name: "epochs",
                value: 0.0,
            });
        }
        if !(0.0..=10.0).contains(&cfg.noise_std) {
            return Err(NeuroError::InvalidParameter {
                name: "noise_std",
                value: f64::from(cfg.noise_std),
            });
        }

        let mut sgd = Sgd::new(SgdConfig {
            learning_rate: cfg.learning_rate,
            momentum: cfg.momentum,
            weight_decay: cfg.weight_decay,
        });
        let mut rng = SimRng::seed_from(cfg.seed);
        let mut order: Vec<usize> = (0..data.len()).collect();
        let mut epoch_losses = Vec::with_capacity(cfg.epochs);
        let mut lr = cfg.learning_rate;

        for epoch in 0..cfg.epochs {
            if cfg.lr_decay_epochs > 0 && epoch > 0 && epoch % cfg.lr_decay_epochs == 0 {
                lr *= cfg.lr_decay_factor;
                sgd.set_learning_rate(lr);
            }
            rng.shuffle(&mut order);
            // Noise warm-up: σ ramps linearly over the first half of
            // training, then holds. Early epochs learn the task at full
            // fidelity; later epochs harden the loss landscape — the
            // schedule used by noise-resilient analog-accelerator training
            // so hardening does not cost clean accuracy at small epoch
            // budgets.
            let sigma = if cfg.noise_std > 0.0 {
                let half = (cfg.epochs as f32 / 2.0).max(1.0);
                cfg.noise_std * (((epoch + 1) as f32) / half).min(1.0)
            } else {
                0.0
            };
            let mut epoch_loss = 0.0f64;
            let mut batches = 0usize;
            for chunk in order.chunks(cfg.batch_size) {
                let (batch, labels) = data.batch(chunk)?;
                network.zero_grad();

                let clean = if sigma > 0.0 {
                    Some(perturb_weights(network, sigma, &mut rng))
                } else {
                    None
                };
                let logits = network.forward(&batch, true)?;
                let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
                network.backward(&grad)?;
                if let Some(clean_values) = clean {
                    restore_weights(network, clean_values);
                }

                sgd.step(&mut network.params_mut())?;
                epoch_loss += f64::from(loss);
                batches += 1;
            }
            let mean_loss = (epoch_loss / batches.max(1) as f64) as f32;
            epoch_losses.push(mean_loss);
            if cfg.verbose {
                safelight_obs::info!(
                    "epoch {:>3}: loss {:.4} (lr {:.4})",
                    epoch + 1,
                    mean_loss,
                    lr
                );
            }
        }

        let final_train_accuracy = accuracy(network, data, cfg.batch_size)?;
        Ok(TrainReport {
            epoch_losses,
            final_train_accuracy,
        })
    }
}

/// Adds `N(0, (σ·rms(W))²)` noise to every decayed (weight) parameter,
/// returning the clean values for later restoration.
fn perturb_weights(network: &mut Network, sigma: f32, rng: &mut SimRng) -> Vec<Tensor> {
    let mut clean = Vec::new();
    for param in network.params_mut() {
        if !param.decay {
            continue;
        }
        clean.push(param.value.clone());
        let scale = sigma * param.value.rms();
        if scale > 0.0 {
            for v in param.value.as_mut_slice() {
                *v += rng.gaussian_with(0.0, f64::from(scale)) as f32;
            }
        }
    }
    clean
}

/// Restores the clean weight values captured by [`perturb_weights`].
fn restore_weights(network: &mut Network, clean: Vec<Tensor>) {
    let mut iter = clean.into_iter();
    for param in network.params_mut() {
        if !param.decay {
            continue;
        }
        param.value = iter.next().expect("clean snapshot matches weight params");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::InMemoryDataset;
    use crate::layers::{Linear, Relu};

    /// Linearly separable 2-class toy data.
    fn toy_data(n: usize) -> InMemoryDataset {
        let mut images = Vec::new();
        let mut labels = Vec::new();
        let mut rng = SimRng::seed_from(99);
        for _ in 0..n {
            let cls = usize::from(rng.uniform() > 0.5);
            let sign = if cls == 1 { 1.0 } else { -1.0 };
            let x = sign * (0.5 + rng.uniform()) as f32;
            let y = rng.uniform_in(-1.0, 1.0) as f32;
            images.push(Tensor::from_vec(vec![2], vec![x, y]).unwrap());
            labels.push(cls);
        }
        InMemoryDataset::new(images, labels).unwrap()
    }

    fn toy_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Linear::new(2, 16, seed).unwrap());
        net.push(Relu::new());
        net.push(Linear::new(16, 2, seed + 1).unwrap());
        net
    }

    #[test]
    fn training_reduces_loss_and_fits_toy_data() {
        let data = toy_data(128);
        let mut net = toy_net(1);
        let cfg = TrainerConfig {
            epochs: 15,
            batch_size: 16,
            ..TrainerConfig::default()
        };
        let report = Trainer::new(cfg).fit(&mut net, &data).unwrap();
        assert!(report.epoch_losses.first().unwrap() > report.epoch_losses.last().unwrap());
        assert!(
            report.final_train_accuracy > 0.95,
            "{}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn training_is_deterministic_per_seed() {
        let data = toy_data(64);
        let cfg = TrainerConfig {
            epochs: 3,
            batch_size: 8,
            ..TrainerConfig::default()
        };
        let mut a = toy_net(2);
        let mut b = toy_net(2);
        Trainer::new(cfg).fit(&mut a, &data).unwrap();
        Trainer::new(cfg).fit(&mut b, &data).unwrap();
        for (pa, pb) in a.params().iter().zip(b.params().iter()) {
            assert_eq!(pa.value.as_slice(), pb.value.as_slice());
        }
    }

    #[test]
    fn weight_decay_shrinks_weight_norm() {
        let data = toy_data(64);
        let cfg_plain = TrainerConfig {
            epochs: 10,
            batch_size: 8,
            ..TrainerConfig::default()
        };
        let cfg_l2 = TrainerConfig {
            weight_decay: 0.05,
            ..cfg_plain
        };
        let mut plain = toy_net(3);
        let mut decayed = toy_net(3);
        Trainer::new(cfg_plain).fit(&mut plain, &data).unwrap();
        Trainer::new(cfg_l2).fit(&mut decayed, &data).unwrap();
        let norm = |n: &Network| -> f32 {
            n.params()
                .iter()
                .filter(|p| p.decay)
                .map(|p| p.value.as_slice().iter().map(|w| w * w).sum::<f32>())
                .sum()
        };
        assert!(norm(&decayed) < norm(&plain));
    }

    #[test]
    fn noise_aware_training_still_learns() {
        let data = toy_data(128);
        let cfg = TrainerConfig {
            epochs: 20,
            batch_size: 16,
            noise_std: 0.3,
            ..TrainerConfig::default()
        };
        let mut net = toy_net(4);
        let report = Trainer::new(cfg).fit(&mut net, &data).unwrap();
        assert!(
            report.final_train_accuracy > 0.9,
            "{}",
            report.final_train_accuracy
        );
    }

    #[test]
    fn noise_restoration_keeps_weights_clean() {
        // After training with noise, running two evaluations in a row gives
        // identical results: no residual perturbation is left in the model.
        let data = toy_data(32);
        let cfg = TrainerConfig {
            epochs: 2,
            batch_size: 8,
            noise_std: 0.5,
            ..TrainerConfig::default()
        };
        let mut net = toy_net(5);
        Trainer::new(cfg).fit(&mut net, &data).unwrap();
        let a = accuracy(&mut net, &data, 8).unwrap();
        let b = accuracy(&mut net, &data, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let data = toy_data(8);
        let mut net = toy_net(6);
        let bad_batch = TrainerConfig {
            batch_size: 0,
            ..TrainerConfig::default()
        };
        assert!(Trainer::new(bad_batch).fit(&mut net, &data).is_err());
        let bad_epochs = TrainerConfig {
            epochs: 0,
            ..TrainerConfig::default()
        };
        assert!(Trainer::new(bad_epochs).fit(&mut net, &data).is_err());
    }
}

//! Integer GEMM kernels for the quantized inference datapath.
//!
//! The quantized backend models finite DAC/ADC converters: weights and
//! activations live on uniform signed grids with a known number of steps
//! per side. Once both operands are integer codes, the matrix product is
//! *exact integer arithmetic* — `i8`/`i16` multiplies accumulated in
//! `i32` — and the only float work left is one fused scale multiply on
//! store. That replaces the seed behaviour of snapping to the grid and
//! then running the full product in floating point.
//!
//! Kernels come in A·Bᵀ row-dot form (both operands row-major over the
//! shared `k` axis) because that is the natural layout for both consumers:
//! linear layers store `W[out][in]`, and the integer convolution gathers a
//! *transposed* im2col patch matrix `[ncols][kdim]`. On AVX2 the inner
//! loop runs `_mm256_madd_epi16` — 16 multiply-adds per instruction,
//! twice the f32 FMA rate — with a portable scalar fallback chosen at
//! runtime. Integer addition is associative, so every implementation
//! produces bit-identical results; the [`mod@reference`] kernels widen the
//! accumulator to `i64` and serve as the exactness oracle in tests.
//!
//! # Overflow contract
//!
//! Callers must keep `k · max|a| · max|b| < 2³¹` so the `i32` accumulator
//! cannot wrap (the layer-level gate enforces this before enabling the
//! integer path). A single `madd` pair is always safe:
//! `2 · 32767² < 2³¹`.

#![allow(unsafe_code)]

use super::kernel_stats::{self, KernelClass};

/// Quantizes `src` onto a uniform signed grid with `steps` levels per
/// side, writing the codes to `dst` and returning the per-step scale
/// (`max|src| / steps`). All-zero input yields scale `0.0` and all-zero
/// codes. `round` ties away from zero, matching the response model's
/// snapping convention.
pub fn quantize_i16(src: &[f32], steps: u32, dst: &mut Vec<i16>) -> f32 {
    debug_assert!(steps >= 1 && steps <= i16::MAX as u32);
    dst.clear();
    let max_abs = max_abs(src);
    if max_abs == 0.0 {
        dst.resize(src.len(), 0);
        return 0.0;
    }
    let scale = max_abs / steps as f32;
    let inv = steps as f32 / max_abs;
    let bound = steps as f32;
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        dst.resize(src.len(), 0);
        // SAFETY: AVX2 support verified at runtime just above.
        unsafe { x86::encode_i16_avx2(src, inv, bound, dst) };
        return scale;
    }
    dst.extend(src.iter().map(|&x| encode_i16(x, inv, bound)));
    scale
}

/// One activation/weight code: clamp + signed half-offset + truncating
/// cast ≡ round ties away from zero, without `f32::round` — which lowers
/// to a libm call on targets without SSE4.1's `roundss` and would
/// dominate the whole integer forward. The AVX2 encoder performs the
/// identical operation sequence, so both paths emit bitwise-equal codes
/// for finite input.
#[inline(always)]
fn encode_i16(x: f32, inv: f32, bound: f32) -> i16 {
    let v = (x * inv).clamp(-bound, bound);
    (v + 0.5f32.copysign(v)) as i16
}

fn max_abs(src: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { x86::max_abs_avx2(src) };
    }
    src.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// `C[m×n] = A[m×k] · Bᵀ` where `B` is `n×k` row-major, `i16` codes,
/// exact `i32` accumulation. Overwrites `C` (no accumulate — the fused
/// dequantize on store adds bias instead).
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_i16_a_bt(a: &[i16], b: &[i16], c: &mut [i32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    kernel_stats::record(KernelClass::Int);
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support verified at runtime just above.
        unsafe { x86::matmul_i16_a_bt_avx2(a, b, c, m, k, n) };
        return;
    }
    matmul_i16_a_bt_scalar(a, b, c, m, k, n);
}

/// `C[m×n] = A[m×k] · Bᵀ` where `B` is `n×k` row-major, `i8` codes, exact
/// `i32` accumulation. Overwrites `C`.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_i8_a_bt(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    kernel_stats::record(KernelClass::Int);
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: AVX2 support verified at runtime just above.
        unsafe { x86::matmul_i8_a_bt_avx2(a, b, c, m, k, n) };
        return;
    }
    matmul_i8_a_bt_scalar(a, b, c, m, k, n);
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

/// The `i16` lane count of the active integer kernel: 16 when the AVX2
/// `madd` path is live, 1 for the scalar fallback. Callers with freedom
/// over their `k` layout (the integer convolution's patch gather) pad the
/// shared axis to a multiple of this so tiny depths — a 3×3 single-channel
/// layer has `k = 9` — still run entirely inside the vector loop; the
/// padding codes are zero and contribute nothing to the exact sum.
#[must_use]
pub fn vector_width() -> usize {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        return 16;
    }
    1
}

fn matmul_i16_a_bt_scalar(a: &[i16], b: &[i16], c: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += i32::from(x) * i32::from(y);
            }
            c[i * n + j] = acc;
        }
    }
}

fn matmul_i8_a_bt_scalar(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in a_row.iter().zip(b_row) {
                acc += i32::from(x) * i32::from(y);
            }
            c[i * n + j] = acc;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    /// Horizontal sum of eight `i32` lanes.
    #[inline(always)]
    unsafe fn hsum_epi32(v: __m256i) -> i32 {
        // SAFETY: caller runs under an AVX2 target_feature scope.
        unsafe {
            let lo = _mm256_castsi256_si128(v);
            let hi = _mm256_extracti128_si256::<1>(v);
            let s = _mm_add_epi32(lo, hi);
            let s = _mm_add_epi32(s, _mm_srli_si128::<8>(s));
            let s = _mm_add_epi32(s, _mm_srli_si128::<4>(s));
            _mm_cvtsi128_si32(s)
        }
    }

    /// Dot products of one A row against four B rows at once, reusing
    /// each 16-lane A load across all four accumulators.
    #[inline(always)]
    unsafe fn dot4_i16(
        a: &[i16],
        b0: &[i16],
        b1: &[i16],
        b2: &[i16],
        b3: &[i16],
        k: usize,
    ) -> [i32; 4] {
        // SAFETY: caller runs under an AVX2 target_feature scope and
        // guarantees every slice holds at least `k` elements.
        unsafe {
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let chunks = k / 16;
            for ch in 0..chunks {
                let off = ch * 16;
                let av = _mm256_loadu_si256(a.as_ptr().add(off).cast());
                let m0 = _mm256_madd_epi16(av, _mm256_loadu_si256(b0.as_ptr().add(off).cast()));
                let m1 = _mm256_madd_epi16(av, _mm256_loadu_si256(b1.as_ptr().add(off).cast()));
                let m2 = _mm256_madd_epi16(av, _mm256_loadu_si256(b2.as_ptr().add(off).cast()));
                let m3 = _mm256_madd_epi16(av, _mm256_loadu_si256(b3.as_ptr().add(off).cast()));
                acc0 = _mm256_add_epi32(acc0, m0);
                acc1 = _mm256_add_epi32(acc1, m1);
                acc2 = _mm256_add_epi32(acc2, m2);
                acc3 = _mm256_add_epi32(acc3, m3);
            }
            // Combined 4-way reduction: two hadd rounds interleave the four
            // accumulators into per-output partial sums within each 128-bit
            // half, and one cross-lane add finishes all four dots at once —
            // a fraction of four independent horizontal sums, which matters
            // when `k` is small (the integer convolution pads tiny patch
            // depths to a single 16-lane chunk).
            let h01 = _mm256_hadd_epi32(acc0, acc1);
            let h23 = _mm256_hadd_epi32(acc2, acc3);
            let h = _mm256_hadd_epi32(h01, h23);
            let s = _mm_add_epi32(_mm256_castsi256_si128(h), _mm256_extracti128_si256::<1>(h));
            let mut out = [0i32; 4];
            _mm_storeu_si128(out.as_mut_ptr().cast(), s);
            for p in chunks * 16..k {
                let x = i32::from(*a.get_unchecked(p));
                out[0] += x * i32::from(*b0.get_unchecked(p));
                out[1] += x * i32::from(*b1.get_unchecked(p));
                out[2] += x * i32::from(*b2.get_unchecked(p));
                out[3] += x * i32::from(*b3.get_unchecked(p));
            }
            out
        }
    }

    /// Single-row i16 dot product.
    #[inline(always)]
    unsafe fn dot1_i16(a: &[i16], b: &[i16], k: usize) -> i32 {
        // SAFETY: caller runs under an AVX2 target_feature scope and
        // guarantees both slices hold at least `k` elements.
        unsafe {
            let mut acc = _mm256_setzero_si256();
            let chunks = k / 16;
            for ch in 0..chunks {
                let off = ch * 16;
                let av = _mm256_loadu_si256(a.as_ptr().add(off).cast());
                let bv = _mm256_loadu_si256(b.as_ptr().add(off).cast());
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            }
            let mut out = hsum_epi32(acc);
            for p in chunks * 16..k {
                out += i32::from(*a.get_unchecked(p)) * i32::from(*b.get_unchecked(p));
            }
            out
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_i16_a_bt_avx2(
        a: &[i16],
        b: &[i16],
        c: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        // SAFETY: slice bounds checked by the public wrapper's debug
        // asserts and honored by the chunked loops below.
        unsafe {
            // Block the B rows so one ~16 KiB panel stays L1-resident
            // across all `m` A rows. The convolution calls this with a
            // small `m` (out_channels) and a huge `n` (every output
            // pixel); without the blocking the whole B matrix streams
            // from memory `m` times over.
            let jb_cols = (8192 / k.max(1)).max(4);
            let mut jb = 0;
            while jb < n {
                let jend = (jb + jb_cols).min(n);
                for i in 0..m {
                    let a_row = &a[i * k..(i + 1) * k];
                    let c_row = &mut c[i * n..(i + 1) * n];
                    let mut j = jb;
                    while j + 4 <= jend {
                        let d = dot4_i16(
                            a_row,
                            &b[j * k..],
                            &b[(j + 1) * k..],
                            &b[(j + 2) * k..],
                            &b[(j + 3) * k..],
                            k,
                        );
                        c_row[j..j + 4].copy_from_slice(&d);
                        j += 4;
                    }
                    while j < jend {
                        c_row[j] = dot1_i16(a_row, &b[j * k..], k);
                        j += 1;
                    }
                }
                jb = jend;
            }
        }
    }

    /// i8 dot product: sign-extend 16 codes per side to i16, then madd.
    #[inline(always)]
    unsafe fn dot1_i8(a: &[i8], b: &[i8], k: usize) -> i32 {
        // SAFETY: caller runs under an AVX2 target_feature scope and
        // guarantees both slices hold at least `k` elements.
        unsafe {
            let mut acc = _mm256_setzero_si256();
            let chunks = k / 16;
            for ch in 0..chunks {
                let off = ch * 16;
                let av = _mm256_cvtepi8_epi16(_mm_loadu_si128(a.as_ptr().add(off).cast()));
                let bv = _mm256_cvtepi8_epi16(_mm_loadu_si128(b.as_ptr().add(off).cast()));
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(av, bv));
            }
            let mut out = hsum_epi32(acc);
            for p in chunks * 16..k {
                out += i32::from(*a.get_unchecked(p)) * i32::from(*b.get_unchecked(p));
            }
            out
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn matmul_i8_a_bt_avx2(
        a: &[i8],
        b: &[i8],
        c: &mut [i32],
        m: usize,
        k: usize,
        n: usize,
    ) {
        // SAFETY: slice bounds checked by the public wrapper's debug
        // asserts and honored by the chunked loops.
        unsafe {
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n..(i + 1) * n];
                for (j, c_ij) in c_row.iter_mut().enumerate() {
                    *c_ij = dot1_i8(a_row, &b[j * k..], k);
                }
            }
        }
    }

    /// Max `|x|` over the slice, eight lanes at a time. `max` is
    /// associative and commutative over the finite activations/weights the
    /// quantizer feeds it, so the result matches the scalar fold exactly.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn max_abs_avx2(src: &[f32]) -> f32 {
        // SAFETY: AVX2 verified by the caller; every load stays inside
        // the `chunks * 8` prefix of `src`.
        unsafe {
            let mask = _mm256_set1_ps(f32::from_bits(0x7fff_ffff));
            let mut m = _mm256_setzero_ps();
            let chunks = src.len() / 8;
            for ch in 0..chunks {
                let v = _mm256_loadu_ps(src.as_ptr().add(ch * 8));
                m = _mm256_max_ps(m, _mm256_and_ps(v, mask));
            }
            let s = _mm_max_ps(_mm256_castps256_ps128(m), _mm256_extractf128_ps::<1>(m));
            let s = _mm_max_ps(s, _mm_movehl_ps(s, s));
            let s = _mm_max_ss(s, _mm_shuffle_ps::<1>(s, s));
            let mut out = _mm_cvtss_f32(s);
            for p in chunks * 8..src.len() {
                out = out.max(src.get_unchecked(p).abs());
            }
            out
        }
    }

    /// Vectorized quantizer body: the identical operation sequence to the
    /// scalar [`super::encode_i16`] (clamp, signed half-offset, truncating
    /// convert), eight codes per iteration, so both paths emit bitwise
    /// equal codes for finite input. `dst` must hold `src.len()` elements.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn encode_i16_avx2(src: &[f32], inv: f32, bound: f32, dst: &mut [i16]) {
        debug_assert_eq!(src.len(), dst.len());
        // SAFETY: AVX2 verified by the caller; loads and stores stay
        // inside the `chunks * 8` prefixes of `src`/`dst`.
        unsafe {
            let vinv = _mm256_set1_ps(inv);
            let vlo = _mm256_set1_ps(-bound);
            let vhi = _mm256_set1_ps(bound);
            let vhalf = _mm256_set1_ps(0.5);
            let vsign = _mm256_set1_ps(-0.0);
            let chunks = src.len() / 8;
            for ch in 0..chunks {
                let v = _mm256_mul_ps(_mm256_loadu_ps(src.as_ptr().add(ch * 8)), vinv);
                let v = _mm256_min_ps(_mm256_max_ps(v, vlo), vhi);
                let half = _mm256_or_ps(vhalf, _mm256_and_ps(v, vsign));
                let vi = _mm256_cvttps_epi32(_mm256_add_ps(v, half));
                // |v| ≤ bound + 0.5 ≤ 32767.5, so the i32 → i16 pack
                // never saturates.
                let packed = _mm_packs_epi32(
                    _mm256_castsi256_si128(vi),
                    _mm256_extracti128_si256::<1>(vi),
                );
                _mm_storeu_si128(dst.as_mut_ptr().add(ch * 8).cast(), packed);
            }
            for p in chunks * 8..src.len() {
                *dst.get_unchecked_mut(p) = super::encode_i16(*src.get_unchecked(p), inv, bound);
            }
        }
    }
}

/// Widened-accumulator (`i64`) scalar kernels: the exactness oracle the
/// production `i32` kernels are tested against.
pub mod reference {
    /// `C[m×n] = A[m×k] · Bᵀ`, `i16` codes, `i64` accumulation.
    pub fn matmul_i16_a_bt(a: &[i16], b: &[i16], c: &mut [i64], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += i64::from(a[i * k + p]) * i64::from(b[j * k + p]);
                }
                c[i * n + j] = acc;
            }
        }
    }

    /// `C[m×n] = A[m×k] · Bᵀ`, `i8` codes, `i64` accumulation.
    pub fn matmul_i8_a_bt(a: &[i8], b: &[i8], c: &mut [i64], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0i64;
                for p in 0..k {
                    acc += i64::from(a[i * k + p]) * i64::from(b[j * k + p]);
                }
                c[i * n + j] = acc;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_i16(len: usize, bound: i16, salt: u64) -> Vec<i16> {
        // Simple deterministic LCG spread over [-bound, bound].
        let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let span = i64::from(bound) * 2 + 1;
                ((state >> 33) as i64 % span - i64::from(bound)) as i16
            })
            .collect()
    }

    #[test]
    fn i16_kernel_matches_widened_reference_exactly() {
        for (m, k, n) in [(1, 1, 1), (3, 7, 5), (4, 33, 9), (5, 64, 8), (2, 129, 3)] {
            let a = codes_i16(m * k, 255, 1);
            let b = codes_i16(n * k, 255, 2);
            let mut c = vec![0i32; m * n];
            matmul_i16_a_bt(&a, &b, &mut c, m, k, n);
            let mut expected = vec![0i64; m * n];
            reference::matmul_i16_a_bt(&a, &b, &mut expected, m, k, n);
            for (idx, (&got, &want)) in c.iter().zip(&expected).enumerate() {
                assert_eq!(i64::from(got), want, "({m},{k},{n}) idx {idx}");
            }
        }
    }

    #[test]
    fn i8_kernel_matches_widened_reference_exactly() {
        for (m, k, n) in [(1, 1, 1), (3, 17, 5), (4, 48, 9), (2, 130, 6)] {
            let a: Vec<i8> = codes_i16(m * k, 127, 3).iter().map(|&x| x as i8).collect();
            let b: Vec<i8> = codes_i16(n * k, 127, 4).iter().map(|&x| x as i8).collect();
            let mut c = vec![0i32; m * n];
            matmul_i8_a_bt(&a, &b, &mut c, m, k, n);
            let mut expected = vec![0i64; m * n];
            reference::matmul_i8_a_bt(&a, &b, &mut expected, m, k, n);
            for (idx, (&got, &want)) in c.iter().zip(&expected).enumerate() {
                assert_eq!(i64::from(got), want, "({m},{k},{n}) idx {idx}");
            }
        }
    }

    #[test]
    fn quantize_round_trips_grid_points() {
        // Values already on the grid must quantize losslessly.
        let steps = 31u32;
        let scale_in = 0.04f32;
        let src: Vec<f32> = (-31..=31).map(|c| c as f32 * scale_in).collect();
        let mut codes = Vec::new();
        let scale = quantize_i16(&src, steps, &mut codes);
        for (&x, &c) in src.iter().zip(&codes) {
            assert!((f32::from(c) * scale - x).abs() < 1e-6, "{x} -> {c}");
        }
    }

    #[test]
    fn quantize_handles_zero_input() {
        let mut codes = Vec::new();
        let scale = quantize_i16(&[0.0, 0.0, 0.0], 15, &mut codes);
        assert_eq!(scale, 0.0);
        assert_eq!(codes, vec![0, 0, 0]);
    }
}

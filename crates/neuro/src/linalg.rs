//! Blocked matrix kernels behind the convolution and linear layers.
//!
//! Three accumulating kernels cover every case the backward passes need:
//!
//! * [`matmul`] — `C += A·B`
//! * [`matmul_a_bt`] — `C += A·Bᵀ`
//! * [`matmul_at_b`] — `C += Aᵀ·B`
//!
//! All use loop orders that keep the innermost loop contiguous so the
//! compiler can vectorize; on the 2-core evaluation machine they sustain a
//! few GFLOP/s, enough to train the paper's (scaled) models in seconds.

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &b[p * n..(p + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_ip * b_pj;
            }
        }
    }
}

/// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major.
///
/// The inner loop is a dot product of two contiguous rows.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            c[i * n + j] += acc;
        }
    }
}

/// `C[m×n] += Aᵀ · B` where `A` is `k×m` row-major and `B` is `k×n`.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    for p in 0..k {
        let a_row = &a[p * m..(p + 1) * m];
        let b_row = &b[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let c_row = &mut c[i * n..(i + 1) * n];
            for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                *c_ij += a_pi * b_pj;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn deterministic_matrix(rows: usize, cols: usize, salt: f32) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i as f32 * 0.37 + salt).sin()) * 0.5)
            .collect()
    }

    #[test]
    fn matmul_matches_naive() {
        let (m, k, n) = (5, 7, 6);
        let a = deterministic_matrix(m, k, 1.0);
        let b = deterministic_matrix(k, n, 2.0);
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![10.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn a_bt_matches_naive() {
        let (m, k, n) = (4, 5, 3);
        let a = deterministic_matrix(m, k, 3.0);
        let b_t = deterministic_matrix(n, k, 4.0); // B stored as n×k
        // Recover B (k×n) to run the naive reference.
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &b_t, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn at_b_matches_naive() {
        let (m, k, n) = (3, 6, 4);
        let a_t = deterministic_matrix(k, m, 5.0); // A stored as k×m
        let b = deterministic_matrix(k, n, 6.0);
        // Recover A (m×k) for the naive reference.
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let mut c = vec![0.0; m * n];
        matmul_at_b(&a_t, &b, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let n = 4;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = deterministic_matrix(n, n, 7.0);
        let mut c = vec![0.0; n * n];
        matmul(&eye, &x, &mut c, n, n, n);
        for (a, b) in c.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}

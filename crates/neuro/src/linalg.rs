//! The tiled, multi-threaded GEMM engine behind the convolution and linear
//! layers.
//!
//! Three accumulating entry points cover every case the forward and
//! backward passes need:
//!
//! * [`matmul`] — `C += A·B`
//! * [`matmul_a_bt`] — `C += A·Bᵀ`
//! * [`matmul_at_b`] — `C += Aᵀ·B`
//!
//! All three lower onto one BLIS-style core: the operand matrices are
//! described by (row, column) strides, panels of A and B are packed into
//! contiguous, zero-padded micro-panels held in the thread-local scratch
//! arena (`crate::scratch`), and an `MR×NR` register-blocked micro-kernel
//! runs over the packed data. Cache blocking follows the classical
//! `MC/KC/NC` scheme: a `KC×NC` panel of B is packed once and reused by
//! every `MC×KC` block of A.
//!
//! Large products are additionally split across the shared worker pool
//! ([`crate::parallel`]) by row block. Each task writes a disjoint row
//! range of `C` and the block layout depends only on the matrix shape and
//! the tile configuration — never on the worker count — so results are
//! **bitwise identical across thread counts**.
//!
//! The seed kernels carried an `a == 0.0` skip branch in two of the three
//! variants; it paid off only for sparse inputs and cost a branch per
//! element on dense ones, so it is gone. The straight-ported seed kernels
//! survive as [`mod@reference`] for tests and benchmark baselines (see
//! `docs/perf.md` for the measured effect).

use crate::parallel;
use crate::scratch::{self, Slot};
use safelight_obs::profile_span_class;

/// Micro-kernel rows: C is updated `MR` rows at a time.
const MR: usize = 4;
/// Micro-kernel columns; 16 f32 lanes = two AVX2 (or four NEON) vectors.
const NR: usize = 16;

/// Cache-blocking tile sizes, fixed at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Rows of A packed per block (multiple of the micro-kernel's `MR`).
    pub mc: usize,
    /// Depth of the packed A/B panels.
    pub kc: usize,
    /// Columns of B packed per panel (multiple of the micro-kernel's `NR`).
    pub nc: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        // Sized for the ubiquitous 32 KiB L1 / ≥256 KiB L2 class of x86-64
        // and ARM cores: the KC×NR B micro-panel (256·16·4 B = 16 KiB)
        // fits L1 alongside the A micro-panel (256·4·4 B = 4 KiB); the
        // MC×KC packed A block (128·256·4 B = 128 KiB) fits L2.
        Self {
            mc: 128,
            kc: 256,
            nc: 1024,
        }
    }
}

impl GemmConfig {
    /// Rounds the configuration to legal micro-kernel multiples.
    fn normalized(self) -> Self {
        Self {
            mc: self.mc.max(MR).div_ceil(MR) * MR,
            kc: self.kc.max(1),
            nc: self.nc.max(NR).div_ceil(NR) * NR,
        }
    }

    /// The active configuration: the compiled default unless overridden at
    /// startup through `SAFELIGHT_GEMM_MC` / `_KC` / `_NC` (useful for
    /// re-tuning on machines with unusual cache hierarchies without a
    /// rebuild).
    #[must_use]
    pub fn active() -> Self {
        static ACTIVE: std::sync::OnceLock<GemmConfig> = std::sync::OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let env = |name: &str, fallback: usize| {
                std::env::var(name)
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(fallback)
            };
            let d = GemmConfig::default();
            GemmConfig {
                mc: env("SAFELIGHT_GEMM_MC", d.mc),
                kc: env("SAFELIGHT_GEMM_KC", d.kc),
                nc: env("SAFELIGHT_GEMM_NC", d.nc),
            }
            .normalized()
        })
    }
}

/// `true` when `SAFELIGHT_GEMM_IMPL=reference`: every public kernel then
/// routes through [`reference`] instead of the tiled engine. This exists
/// for apples-to-apples benchmarking against the seed kernels
/// (`docs/perf.md`) and for bisecting numerical questions.
///
/// The environment lookup happens exactly once (first GEMM call); every
/// later call pays only the `OnceLock` fast path — one atomic acquire
/// load — and the `#[inline]` lets that fold into the kernel entry
/// points instead of costing a function call per product on the hot path.
#[inline]
fn force_reference() -> bool {
    static FORCE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *FORCE.get_or_init(|| {
        std::env::var("SAFELIGHT_GEMM_IMPL").is_ok_and(|v| v.eq_ignore_ascii_case("reference"))
    })
}

/// Strided read-only view of a logical `rows × cols` matrix.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    /// Element stride between consecutive rows.
    rs: usize,
    /// Element stride between consecutive columns.
    cs: usize,
}

impl View<'_> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if force_reference() {
        let _span = profile_span_class("gemm_matmul", "reference");
        return reference::matmul(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        View {
            data: a,
            rs: k,
            cs: 1,
        },
        View {
            data: b,
            rs: n,
            cs: 1,
        },
        c,
        "gemm_matmul",
    );
}

/// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if force_reference() {
        let _span = profile_span_class("gemm_matmul_a_bt", "reference");
        return reference::matmul_a_bt(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        View {
            data: a,
            rs: k,
            cs: 1,
        },
        // Logical B[p][j] lives at stored[j*k + p].
        View {
            data: b,
            rs: 1,
            cs: k,
        },
        c,
        "gemm_matmul_a_bt",
    );
}

/// `C[m×n] += Aᵀ · B` where `A` is `k×m` row-major and `B` is `k×n`.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if force_reference() {
        let _span = profile_span_class("gemm_matmul_at_b", "reference");
        return reference::matmul_at_b(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        // Logical A[i][p] lives at stored[p*m + i].
        View {
            data: a,
            rs: 1,
            cs: m,
        },
        View {
            data: b,
            rs: n,
            cs: 1,
        },
        c,
        "gemm_matmul_at_b",
    );
}

/// Products at least this large (in multiply-adds) fan row blocks out
/// across the worker pool; smaller ones stay on the calling thread where
/// blocking overhead would dominate.
const PARALLEL_MIN_MADDS: usize = 1 << 20;

/// Below this many elements in A, the packed path cannot amortize its
/// panel copies (B is packed once per ~MR rows of A); a direct row-AXPY
/// sweep over B is faster and still vectorizes on the contiguous rows.
const DIRECT_MAX_A_ELEMS: usize = 2048;

fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    phase: &'static str,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Skinny products (small weight matrix × wide activation panel — the
    // shape every small-CNN conv layer produces) take the direct path.
    if m * k <= DIRECT_MAX_A_ELEMS && b.cs == 1 {
        let _span = profile_span_class(phase, "direct");
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let a_ip = a.at(i, p);
                let b_row = &b.data[p * b.rs..p * b.rs + n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ip * b_pj;
                }
            }
        }
        return;
    }
    let cfg = GemmConfig::active();

    // Row-block parallelism: worth it only for large products, and skipped
    // on pool workers — there the batch dimension above us is already
    // saturating the pool, and nesting would only add queue traffic.
    let on_pool_worker = std::thread::current()
        .name()
        .is_some_and(|name| name.starts_with("safelight-worker"));
    let madds = m.saturating_mul(k).saturating_mul(n);
    let row_blocks = m.div_ceil(cfg.mc);
    if row_blocks > 1 && madds >= PARALLEL_MIN_MADDS && !on_pool_worker {
        let _span = profile_span_class(phase, "parallel");
        // Split C into disjoint row-block slices so tasks can write
        // concurrently; the per-block work is identical to the serial
        // path, so numerics do not depend on the split.
        let mut c_rest = c;
        let mut tasks: Vec<(usize, &mut [f32])> = Vec::with_capacity(row_blocks);
        for block in 0..row_blocks {
            let i0 = block * cfg.mc;
            let rows = cfg.mc.min(m - i0);
            let (c_block, rest) = c_rest.split_at_mut(rows * n);
            tasks.push((i0, c_block));
            c_rest = rest;
        }
        parallel::scoped_map(tasks, |(i0, c_block)| {
            let rows = c_block.len() / n;
            let a_block = View {
                data: &a.data[i0 * a.rs..],
                rs: a.rs,
                cs: a.cs,
            };
            gemm_serial(rows, k, n, a_block, b, c_block, cfg);
        });
        return;
    }
    let _span = profile_span_class(phase, "serial");
    gemm_serial(m, k, n, a, b, c, cfg);
}

/// The single-threaded blocked core: loops NC → KC → MC with B packed per
/// (KC, NC) panel and A packed per (MC, KC) block.
fn gemm_serial(
    m: usize,
    k: usize,
    n: usize,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    cfg: GemmConfig,
) {
    scratch::with_buffer(Slot::PackB, |pack_b| {
        scratch::with_buffer(Slot::PackA, |pack_a| {
            for jc in (0..n).step_by(cfg.nc) {
                let nc = cfg.nc.min(n - jc);
                for pc in (0..k).step_by(cfg.kc) {
                    let kc = cfg.kc.min(k - pc);
                    pack_b_panel(b, pc, jc, kc, nc, pack_b);
                    for ic in (0..m).step_by(cfg.mc) {
                        let mc = cfg.mc.min(m - ic);
                        pack_a_block(a, ic, pc, mc, kc, pack_a);
                        macro_kernel(mc, kc, nc, pack_a, pack_b, c, ic, jc, n);
                    }
                }
            }
        });
    });
}

/// Packs `B[pc..pc+kc][jc..jc+nc]` into NR-wide micro-panels:
/// `pack[jb][p*NR + j]`, zero-padded to a multiple of NR columns.
fn pack_b_panel(b: View<'_>, pc: usize, jc: usize, kc: usize, nc: usize, pack: &mut Vec<f32>) {
    let panels = nc.div_ceil(NR);
    pack.clear();
    pack.resize(panels * kc * NR, 0.0);
    for jb in 0..panels {
        let j0 = jb * NR;
        let width = NR.min(nc - j0);
        let dst_panel = &mut pack[jb * kc * NR..(jb + 1) * kc * NR];
        if b.cs == 1 {
            // Contiguous source rows: copy slice-wise.
            for p in 0..kc {
                let src_base = (pc + p) * b.rs + (jc + j0);
                dst_panel[p * NR..p * NR + width]
                    .copy_from_slice(&b.data[src_base..src_base + width]);
            }
        } else {
            for p in 0..kc {
                for j in 0..width {
                    dst_panel[p * NR + j] = b.at(pc + p, jc + j0 + j);
                }
            }
        }
    }
}

/// Packs `A[ic..ic+mc][pc..pc+kc]` into MR-tall micro-panels:
/// `pack[ib][p*MR + i]`, zero-padded to a multiple of MR rows.
fn pack_a_block(a: View<'_>, ic: usize, pc: usize, mc: usize, kc: usize, pack: &mut Vec<f32>) {
    let panels = mc.div_ceil(MR);
    pack.clear();
    pack.resize(panels * kc * MR, 0.0);
    for ib in 0..panels {
        let i0 = ib * MR;
        let height = MR.min(mc - i0);
        let dst_panel = &mut pack[ib * kc * MR..(ib + 1) * kc * MR];
        for p in 0..kc {
            for i in 0..height {
                dst_panel[p * MR + i] = a.at(ic + i0 + i, pc + p);
            }
        }
    }
}

/// Runs the micro-kernel over every `MR×NR` tile of one packed
/// `(mc × kc) · (kc × nc)` block product, accumulating into `C`.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    mc: usize,
    kc: usize,
    nc: usize,
    pack_a: &[f32],
    pack_b: &[f32],
    c: &mut [f32],
    ic: usize,
    jc: usize,
    n: usize,
) {
    for (ib, a_panel) in pack_a.chunks_exact(kc * MR).enumerate() {
        let i0 = ib * MR;
        let rows = MR.min(mc - i0);
        for (jb, b_panel) in pack_b.chunks_exact(kc * NR).enumerate() {
            let j0 = jb * NR;
            let cols = NR.min(nc - j0);
            let acc = micro_kernel(kc, a_panel, b_panel);
            // Scatter the valid portion of the tile into C.
            for i in 0..rows {
                let c_row = &mut c[(ic + i0 + i) * n + jc + j0..][..cols];
                for (c_val, acc_val) in c_row.iter_mut().zip(&acc[i][..cols]) {
                    *c_val += acc_val;
                }
            }
        }
    }
}

/// The register-blocked `MR×NR` kernel: a rank-`kc` update of one tile,
/// fully in local arrays so the compiler keeps the accumulators in vector
/// registers.
#[inline]
fn micro_kernel(kc: usize, a_panel: &[f32], b_panel: &[f32]) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a_col: &[f32] = &a_panel[p * MR..(p + 1) * MR];
        let b_row: &[f32] = &b_panel[p * NR..(p + 1) * NR];
        for i in 0..MR {
            let a_ip = a_col[i];
            let acc_row = &mut acc[i];
            for j in 0..NR {
                acc_row[j] += a_ip * b_row[j];
            }
        }
    }
    acc
}

/// The straight-ported seed kernels, kept as the correctness oracle for
/// property tests and the baseline for `benches/gemm.rs`.
///
/// These are the exact loop nests the repository started with, minus the
/// `a == 0.0` skip branch (which penalized dense inputs; see
/// `docs/perf.md`).
pub mod reference {
    /// `C[m×n] += A[m×k] · B[k×n]`, naive blocked loops.
    pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ip * b_pj;
                }
            }
        }
    }

    /// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major.
    pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// `C[m×n] += Aᵀ · B` where `A` is `k×m` row-major and `B` is `k×n`.
    pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                let c_row = &mut c[i * n..(i + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_pi * b_pj;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn deterministic_matrix(rows: usize, cols: usize, salt: f32) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i as f32 * 0.37 + salt).sin()) * 0.5)
            .collect()
    }

    #[test]
    fn matmul_matches_naive() {
        let (m, k, n) = (5, 7, 6);
        let a = deterministic_matrix(m, k, 1.0);
        let b = deterministic_matrix(k, n, 2.0);
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![10.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn a_bt_matches_naive() {
        let (m, k, n) = (4, 5, 3);
        let a = deterministic_matrix(m, k, 3.0);
        // B stored as n×k; recover B (k×n) to run the naive reference.
        let b_t = deterministic_matrix(n, k, 4.0);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &b_t, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn at_b_matches_naive() {
        let (m, k, n) = (3, 6, 4);
        // A stored as k×m; recover A (m×k) for the naive reference.
        let a_t = deterministic_matrix(k, m, 5.0);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let b = deterministic_matrix(k, n, 6.0);
        let mut c = vec![0.0; m * n];
        matmul_at_b(&a_t, &b, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let n = 4;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = deterministic_matrix(n, n, 7.0);
        let mut c = vec![0.0; n * n];
        matmul(&eye, &x, &mut c, n, n, n);
        for (a, b) in c.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn tiled_crosses_every_blocking_boundary() {
        // Dimensions straddling MR/NR/MC/KC/NC edges, including primes.
        let cfg = GemmConfig::active();
        let dims = [
            (1, 1, 1),
            (MR - 1, 3, NR - 1),
            (MR + 1, cfg.kc + 3, NR + 1),
            (cfg.mc + 5, 7, 2 * NR + 3),
            (17, cfg.kc - 1, 33),
        ];
        for (m, k, n) in dims {
            let a = deterministic_matrix(m, k, 0.3);
            let b = deterministic_matrix(k, n, 0.7);
            let mut c = vec![0.0; m * n];
            matmul(&a, &b, &mut c, m, k, n);
            let expected = naive(&a, &b, m, k, n);
            for (i, (x, y)) in c.iter().zip(&expected).enumerate() {
                assert!(
                    (x - y).abs() < 1e-3,
                    "({m},{k},{n}) mismatch at {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn large_parallel_product_matches_reference_bitwise_per_call() {
        // Big enough to trip the row-block parallel path: results must be
        // identical to the serial blocked path, call after call.
        let (m, k, n) = (3 * GemmConfig::active().mc + 7, 64, 96);
        let a = deterministic_matrix(m, k, 1.1);
        let b = deterministic_matrix(k, n, 2.2);
        let mut c_par = vec![0.0; m * n];
        matmul(&a, &b, &mut c_par, m, k, n);
        let mut c_serial = vec![0.0; m * n];
        gemm_serial(
            m,
            k,
            n,
            View {
                data: &a,
                rs: k,
                cs: 1,
            },
            View {
                data: &b,
                rs: n,
                cs: 1,
            },
            &mut c_serial,
            GemmConfig::active(),
        );
        assert_eq!(c_par, c_serial, "parallel row blocking changed numerics");
    }

    #[test]
    fn config_normalization_respects_micro_kernel() {
        let cfg = GemmConfig {
            mc: 1,
            kc: 0,
            nc: 1,
        }
        .normalized();
        assert_eq!(cfg.mc % MR, 0);
        assert_eq!(cfg.nc % NR, 0);
        assert!(cfg.kc >= 1);
        assert!(cfg.mc >= MR && cfg.nc >= NR);
    }
}

//! The tiled, multi-threaded GEMM engine behind the convolution and linear
//! layers.
//!
//! Three accumulating entry points cover every case the forward and
//! backward passes need:
//!
//! * [`matmul`] — `C += A·B`
//! * [`matmul_a_bt`] — `C += A·Bᵀ`
//! * [`matmul_at_b`] — `C += Aᵀ·B`
//!
//! All three lower onto one BLIS-style core: the operand matrices are
//! described by (row, column) strides, panels of A and B are packed into
//! contiguous, zero-padded micro-panels held in the thread-local scratch
//! arena (`crate::scratch`), and a register-blocked micro-kernel runs over
//! the packed data. Cache blocking follows the classical `MC/KC/NC`
//! scheme: a `KC×NC` panel of B is packed once and reused by every
//! `MC×KC` block of A.
//!
//! # Kernel tiers
//!
//! Which micro-kernel runs is a three-way dispatch, resolved once per
//! process (see [`GemmImpl`]):
//!
//! * `reference` — the straight-ported seed loop nests ([`mod@reference`]),
//!   kept as the correctness oracle and benchmark baseline;
//! * `tiled` — the portable packed engine with the scalar `4×16` kernel;
//! * `simd` — the packed engine with an explicit FMA micro-kernel from
//!   the private `simd` module (`6×16` AVX2+FMA or `6×32` AVX-512F,
//!   chosen by runtime CPU detection; unavailable ISAs fall back to
//!   `tiled`).
//!
//! The `SAFELIGHT_GEMM_IMPL` environment variable pins the dispatch
//! (`reference` / `tiled` / `simd` / `auto`); the default `auto` picks
//! `simd` whenever the machine supports it. Every entry point also bumps a
//! per-kernel-class counter ([`kernel_stats`]) so a run can report which
//! kernels actually executed.
//!
//! Large products are additionally split across the shared worker pool
//! ([`crate::parallel`]) by row block. Each task writes a disjoint row
//! range of `C` and the block layout depends only on the matrix shape and
//! the tile configuration — never on the worker count — so results are
//! **bitwise identical across thread counts** for every kernel tier.
//!
//! The seed kernels carried an `a == 0.0` skip branch in two of the three
//! variants; it paid off only for sparse inputs and cost a branch per
//! element on dense ones, so it is gone. The straight-ported seed kernels
//! survive as [`mod@reference`] for tests and benchmark baselines (see
//! `docs/perf.md` for the measured effect).

use crate::parallel;
use crate::scratch::{self, Slot};
use crate::simd::{self, MicroKernel};
use safelight_obs::profile_span_class;

/// The integer (i8/i16 × i32-accumulate) GEMM kernels used by the
/// quantized inference datapath.
#[path = "linalg_int.rs"]
pub mod int;

/// Cache-blocking tile sizes, fixed at first use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GemmConfig {
    /// Rows of A packed per block (rounded up to the micro-kernel's `MR`).
    pub mc: usize,
    /// Depth of the packed A/B panels.
    pub kc: usize,
    /// Columns of B packed per panel (rounded up to the micro-kernel's
    /// `NR`).
    pub nc: usize,
}

impl Default for GemmConfig {
    fn default() -> Self {
        // Sized for the ubiquitous 32 KiB L1 / ≥256 KiB L2 class of x86-64
        // and ARM cores: the KC×NR B micro-panel (256·16·4 B = 16 KiB)
        // fits L1 alongside the A micro-panel (256·6·4 B = 6 KiB); the
        // MC×KC packed A block (≈128·256·4 B = 128 KiB) fits L2.
        Self {
            mc: 128,
            kc: 256,
            nc: 1024,
        }
    }
}

impl GemmConfig {
    /// Rounds the configuration to legal multiples of a micro-kernel's
    /// tile shape.
    fn normalized_for(self, mr: usize, nr: usize) -> Self {
        Self {
            mc: self.mc.max(mr).div_ceil(mr) * mr,
            kc: self.kc.max(1),
            nc: self.nc.max(nr).div_ceil(nr) * nr,
        }
    }

    /// The active configuration: the compiled default unless overridden at
    /// startup through `SAFELIGHT_GEMM_MC` / `_KC` / `_NC` (useful for
    /// re-tuning on machines with unusual cache hierarchies without a
    /// rebuild). Values are rounded per kernel at use.
    #[must_use]
    pub fn active() -> Self {
        static ACTIVE: std::sync::OnceLock<GemmConfig> = std::sync::OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let env = |name: &str, fallback: usize| {
                std::env::var(name)
                    .ok()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or(fallback)
            };
            let d = GemmConfig::default();
            GemmConfig {
                mc: env("SAFELIGHT_GEMM_MC", d.mc),
                kc: env("SAFELIGHT_GEMM_KC", d.kc),
                nc: env("SAFELIGHT_GEMM_NC", d.nc),
            }
        })
    }
}

/// The f32 kernel-tier selector behind `SAFELIGHT_GEMM_IMPL`.
///
/// | value                | kernel                                        |
/// |----------------------|-----------------------------------------------|
/// | `reference`          | straight-ported seed loops ([`mod@reference`])|
/// | `tiled` (or `scalar`)| packed engine, portable `4×16` kernel         |
/// | `simd`               | packed engine, FMA kernel (falls back to `tiled` when the CPU lacks AVX2+FMA) |
/// | `auto` (or unset)    | `simd` when available, else `tiled`           |
///
/// The lookup and CPU detection happen exactly once (first GEMM call);
/// every later call pays only the `OnceLock` fast path, and the resolved
/// tier is global — it cannot differ between worker threads, so results
/// are bitwise stable across thread counts for every tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GemmImpl {
    /// The straight-ported seed loop nests.
    Reference,
    /// The packed engine with the portable scalar micro-kernel.
    Tiled,
    /// The packed engine with the runtime-detected SIMD micro-kernel.
    Simd,
}

impl GemmImpl {
    /// Every tier, in escalation order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::Reference, Self::Tiled, Self::Simd]
    }

    /// Stable lowercase label (CLI/report/bench row key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Reference => "reference",
            Self::Tiled => "tiled",
            Self::Simd => "simd",
        }
    }

    /// Whether this tier can run on the current machine. `Reference` and
    /// `Tiled` always can; `Simd` requires a detected vector ISA.
    #[must_use]
    pub fn is_available(self) -> bool {
        match self {
            Self::Reference | Self::Tiled => true,
            Self::Simd => MicroKernel::detect_simd().is_some(),
        }
    }

    /// Instruction-set label of the micro-kernel this tier runs
    /// (`"avx2+fma"`, `"avx512f"`, or `"scalar"`).
    #[must_use]
    pub fn isa(self) -> &'static str {
        match self {
            Self::Reference | Self::Tiled => "scalar",
            Self::Simd => MicroKernel::detect_simd().map_or("scalar", MicroKernel::isa_name),
        }
    }

    /// The tier every public GEMM entry point dispatches to, resolved once
    /// from `SAFELIGHT_GEMM_IMPL` plus CPU feature detection.
    #[must_use]
    pub fn active() -> Self {
        static ACTIVE: std::sync::OnceLock<GemmImpl> = std::sync::OnceLock::new();
        *ACTIVE.get_or_init(|| {
            let simd_or_tiled = || {
                if GemmImpl::Simd.is_available() {
                    GemmImpl::Simd
                } else {
                    GemmImpl::Tiled
                }
            };
            match std::env::var("SAFELIGHT_GEMM_IMPL") {
                Ok(v) if v.eq_ignore_ascii_case("reference") => GemmImpl::Reference,
                Ok(v) if v.eq_ignore_ascii_case("tiled") || v.eq_ignore_ascii_case("scalar") => {
                    GemmImpl::Tiled
                }
                // An explicit `simd` request on a machine without the ISA
                // degrades to `tiled` (the kernel report records what ran).
                Ok(v) if v.eq_ignore_ascii_case("simd") => simd_or_tiled(),
                _ => simd_or_tiled(),
            }
        })
    }

    /// The micro-kernel this tier lowers onto ([`GemmImpl::Reference`] has
    /// none — it never reaches the packed engine).
    fn micro_kernel(self) -> MicroKernel {
        match self {
            Self::Reference | Self::Tiled => MicroKernel::Scalar,
            Self::Simd => MicroKernel::detect_simd().unwrap_or(MicroKernel::Scalar),
        }
    }
}

/// Per-process counters recording which GEMM kernel classes actually
/// executed — the data behind the `repro` kernel report, so a run can
/// state which tiers served it rather than which were requested.
///
/// Counting costs one relaxed atomic increment per kernel *entry call*
/// (not per tile), which is noise next to any product large enough to
/// matter.
pub mod kernel_stats {
    use std::sync::atomic::{AtomicU64, Ordering};

    /// One observable kernel class per dispatch outcome.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum KernelClass {
        /// Seed reference loops (env-forced).
        Reference,
        /// Direct row-AXPY path for tiny A operands.
        Direct,
        /// Packed engine, scalar kernel, calling thread only.
        Tiled,
        /// Packed engine, scalar kernel, row blocks across the pool.
        TiledParallel,
        /// Packed engine, SIMD kernel, calling thread only.
        Simd,
        /// Packed engine, SIMD kernel, row blocks across the pool.
        SimdParallel,
        /// Integer (i8/i16 → i32) quantized-datapath GEMM.
        Int,
        /// Convolution forward served by im2col + GEMM.
        Im2colConv,
        /// Convolution forward served by the FFT overlap-add path.
        FftConv,
    }

    const CLASSES: [KernelClass; 9] = [
        KernelClass::Reference,
        KernelClass::Direct,
        KernelClass::Tiled,
        KernelClass::TiledParallel,
        KernelClass::Simd,
        KernelClass::SimdParallel,
        KernelClass::Int,
        KernelClass::Im2colConv,
        KernelClass::FftConv,
    ];

    impl KernelClass {
        /// Stable label used in reports.
        #[must_use]
        pub fn name(self) -> &'static str {
            match self {
                Self::Reference => "reference",
                Self::Direct => "direct",
                Self::Tiled => "tiled",
                Self::TiledParallel => "tiled_parallel",
                Self::Simd => "simd",
                Self::SimdParallel => "simd_parallel",
                Self::Int => "int",
                Self::Im2colConv => "conv_im2col",
                Self::FftConv => "conv_fft",
            }
        }
    }

    static COUNTS: [AtomicU64; 9] = [
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
        AtomicU64::new(0),
    ];

    /// Bumps the counter for `class`.
    #[inline]
    pub fn record(class: KernelClass) {
        COUNTS[class as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of every class counter, in declaration order.
    #[must_use]
    pub fn snapshot() -> Vec<(&'static str, u64)> {
        CLASSES
            .iter()
            .map(|&c| (c.name(), COUNTS[c as usize].load(Ordering::Relaxed)))
            .collect()
    }

    /// One-line report of the classes that executed (all-zero → "none").
    #[must_use]
    pub fn report() -> String {
        let parts: Vec<String> = snapshot()
            .into_iter()
            .filter(|&(_, n)| n > 0)
            .map(|(name, n)| format!("{name}={n}"))
            .collect();
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join(" ")
        }
    }

    /// Zeroes every counter (tests and per-phase reporting).
    pub fn reset() {
        for c in &COUNTS {
            c.store(0, Ordering::Relaxed);
        }
    }
}

use kernel_stats::KernelClass;

/// Strided read-only view of a logical `rows × cols` matrix.
#[derive(Clone, Copy)]
struct View<'a> {
    data: &'a [f32],
    /// Element stride between consecutive rows.
    rs: usize,
    /// Element stride between consecutive columns.
    cs: usize,
}

impl View<'_> {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.rs + c * self.cs]
    }
}

/// `C[m×n] += A[m×k] · B[k×n]`, all row-major.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let imp = GemmImpl::active();
    if imp == GemmImpl::Reference {
        let _span = profile_span_class("gemm_matmul", "reference");
        kernel_stats::record(KernelClass::Reference);
        return reference::matmul(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        View {
            data: a,
            rs: k,
            cs: 1,
        },
        View {
            data: b,
            rs: n,
            cs: 1,
        },
        c,
        "gemm_matmul",
        imp,
        true,
    );
}

/// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let imp = GemmImpl::active();
    if imp == GemmImpl::Reference {
        let _span = profile_span_class("gemm_matmul_a_bt", "reference");
        kernel_stats::record(KernelClass::Reference);
        return reference::matmul_a_bt(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        View {
            data: a,
            rs: k,
            cs: 1,
        },
        // Logical B[p][j] lives at stored[j*k + p].
        View {
            data: b,
            rs: 1,
            cs: k,
        },
        c,
        "gemm_matmul_a_bt",
        imp,
        true,
    );
}

/// `C[m×n] += Aᵀ · B` where `A` is `k×m` row-major and `B` is `k×n`.
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let imp = GemmImpl::active();
    if imp == GemmImpl::Reference {
        let _span = profile_span_class("gemm_matmul_at_b", "reference");
        kernel_stats::record(KernelClass::Reference);
        return reference::matmul_at_b(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        // Logical A[i][p] lives at stored[p*m + i].
        View {
            data: a,
            rs: 1,
            cs: m,
        },
        View {
            data: b,
            rs: n,
            cs: 1,
        },
        c,
        "gemm_matmul_at_b",
        imp,
        true,
    );
}

/// `C[m×n] += A[m×k] · B[k×n]` through an explicitly chosen kernel tier,
/// ignoring `SAFELIGHT_GEMM_IMPL` and the tiny-operand direct path.
///
/// This is the benchmark/test entry point: per-kernel rows in
/// `BENCH_gemm.json` and the cross-kernel agreement proptests need to run
/// a *specific* tier regardless of environment. A `Simd` request on a
/// machine without a vector ISA degrades to the scalar kernel (check
/// [`GemmImpl::is_available`] first when that matters).
///
/// # Panics
///
/// Panics (debug assertions) when the buffer lengths do not match the
/// stated dimensions.
pub fn matmul_with(
    imp: GemmImpl,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if imp == GemmImpl::Reference {
        kernel_stats::record(KernelClass::Reference);
        return reference::matmul(a, b, c, m, k, n);
    }
    gemm(
        m,
        k,
        n,
        View {
            data: a,
            rs: k,
            cs: 1,
        },
        View {
            data: b,
            rs: n,
            cs: 1,
        },
        c,
        "gemm_matmul",
        imp,
        false,
    );
}

/// Products at least this large (in multiply-adds) fan row blocks out
/// across the worker pool; smaller ones stay on the calling thread where
/// blocking overhead would dominate.
const PARALLEL_MIN_MADDS: usize = 1 << 20;

/// Below this many elements in A, the packed path cannot amortize its
/// panel copies (B is packed once per ~MR rows of A); a direct row-AXPY
/// sweep over B is faster and still vectorizes on the contiguous rows.
const DIRECT_MAX_A_ELEMS: usize = 2048;

#[allow(clippy::too_many_arguments)]
fn gemm(
    m: usize,
    k: usize,
    n: usize,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    phase: &'static str,
    imp: GemmImpl,
    allow_direct: bool,
) {
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    // Skinny products (small weight matrix × wide activation panel — the
    // shape every small-CNN conv layer produces) take the direct path.
    if allow_direct && m * k <= DIRECT_MAX_A_ELEMS && b.cs == 1 {
        let _span = profile_span_class(phase, "direct");
        kernel_stats::record(KernelClass::Direct);
        for i in 0..m {
            let c_row = &mut c[i * n..(i + 1) * n];
            for p in 0..k {
                let a_ip = a.at(i, p);
                let b_row = &b.data[p * b.rs..p * b.rs + n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ip * b_pj;
                }
            }
        }
        return;
    }
    let kern = imp.micro_kernel();
    let cfg = GemmConfig::active().normalized_for(kern.mr(), kern.nr());

    // Row-block parallelism: worth it only for large products, and skipped
    // on pool workers — there the batch dimension above us is already
    // saturating the pool, and nesting would only add queue traffic.
    let on_pool_worker = std::thread::current()
        .name()
        .is_some_and(|name| name.starts_with("safelight-worker"));
    let madds = m.saturating_mul(k).saturating_mul(n);
    let row_blocks = m.div_ceil(cfg.mc);
    if row_blocks > 1 && madds >= PARALLEL_MIN_MADDS && !on_pool_worker {
        let _span = profile_span_class(
            phase,
            if imp == GemmImpl::Simd {
                "simd_parallel"
            } else {
                "parallel"
            },
        );
        kernel_stats::record(if imp == GemmImpl::Simd {
            KernelClass::SimdParallel
        } else {
            KernelClass::TiledParallel
        });
        // Split C into disjoint row-block slices so tasks can write
        // concurrently; the per-block work is identical to the serial
        // path, so numerics do not depend on the split.
        let mut c_rest = c;
        let mut tasks: Vec<(usize, &mut [f32])> = Vec::with_capacity(row_blocks);
        for block in 0..row_blocks {
            let i0 = block * cfg.mc;
            let rows = cfg.mc.min(m - i0);
            let (c_block, rest) = c_rest.split_at_mut(rows * n);
            tasks.push((i0, c_block));
            c_rest = rest;
        }
        parallel::scoped_map(tasks, |(i0, c_block)| {
            let rows = c_block.len() / n;
            let a_block = View {
                data: &a.data[i0 * a.rs..],
                rs: a.rs,
                cs: a.cs,
            };
            gemm_serial(rows, k, n, a_block, b, c_block, cfg, kern);
        });
        return;
    }
    let _span = profile_span_class(
        phase,
        if imp == GemmImpl::Simd {
            "simd"
        } else {
            "serial"
        },
    );
    kernel_stats::record(if imp == GemmImpl::Simd {
        KernelClass::Simd
    } else {
        KernelClass::Tiled
    });
    gemm_serial(m, k, n, a, b, c, cfg, kern);
}

/// The single-threaded blocked core: loops NC → KC → MC with B packed per
/// (KC, NC) panel and A packed per (MC, KC) block.
#[allow(clippy::too_many_arguments)]
fn gemm_serial(
    m: usize,
    k: usize,
    n: usize,
    a: View<'_>,
    b: View<'_>,
    c: &mut [f32],
    cfg: GemmConfig,
    kern: MicroKernel,
) {
    scratch::with_buffer(Slot::PackB, |pack_b| {
        scratch::with_buffer(Slot::PackA, |pack_a| {
            for jc in (0..n).step_by(cfg.nc) {
                let nc = cfg.nc.min(n - jc);
                for pc in (0..k).step_by(cfg.kc) {
                    let kc = cfg.kc.min(k - pc);
                    pack_b_panel(b, pc, jc, kc, nc, pack_b, kern.nr());
                    for ic in (0..m).step_by(cfg.mc) {
                        let mc = cfg.mc.min(m - ic);
                        pack_a_block(a, ic, pc, mc, kc, pack_a, kern.mr());
                        macro_kernel(kern, mc, kc, nc, pack_a, pack_b, c, ic, jc, n);
                    }
                }
            }
        });
    });
}

/// Packs `B[pc..pc+kc][jc..jc+nc]` into NR-wide micro-panels:
/// `pack[jb][p*NR + j]`, zero-padded to a multiple of NR columns.
fn pack_b_panel(
    b: View<'_>,
    pc: usize,
    jc: usize,
    kc: usize,
    nc: usize,
    pack: &mut Vec<f32>,
    nr: usize,
) {
    let panels = nc.div_ceil(nr);
    pack.clear();
    pack.resize(panels * kc * nr, 0.0);
    for jb in 0..panels {
        let j0 = jb * nr;
        let width = nr.min(nc - j0);
        let dst_panel = &mut pack[jb * kc * nr..(jb + 1) * kc * nr];
        if b.cs == 1 {
            // Contiguous source rows: copy slice-wise.
            for p in 0..kc {
                let src_base = (pc + p) * b.rs + (jc + j0);
                dst_panel[p * nr..p * nr + width]
                    .copy_from_slice(&b.data[src_base..src_base + width]);
            }
        } else {
            for p in 0..kc {
                for j in 0..width {
                    dst_panel[p * nr + j] = b.at(pc + p, jc + j0 + j);
                }
            }
        }
    }
}

/// Packs `A[ic..ic+mc][pc..pc+kc]` into MR-tall micro-panels:
/// `pack[ib][p*MR + i]`, zero-padded to a multiple of MR rows.
fn pack_a_block(
    a: View<'_>,
    ic: usize,
    pc: usize,
    mc: usize,
    kc: usize,
    pack: &mut Vec<f32>,
    mr: usize,
) {
    let panels = mc.div_ceil(mr);
    pack.clear();
    pack.resize(panels * kc * mr, 0.0);
    for ib in 0..panels {
        let i0 = ib * mr;
        let height = mr.min(mc - i0);
        let dst_panel = &mut pack[ib * kc * mr..(ib + 1) * kc * mr];
        for p in 0..kc {
            for i in 0..height {
                dst_panel[p * mr + i] = a.at(ic + i0 + i, pc + p);
            }
        }
    }
}

/// Runs the micro-kernel over every `MR×NR` tile of one packed
/// `(mc × kc) · (kc × nc)` block product, accumulating into `C`. Full
/// tiles accumulate straight into `C`; edge tiles go through a dense
/// stack buffer and scatter only the valid region.
#[allow(clippy::too_many_arguments)]
fn macro_kernel(
    kern: MicroKernel,
    mc: usize,
    kc: usize,
    nc: usize,
    pack_a: &[f32],
    pack_b: &[f32],
    c: &mut [f32],
    ic: usize,
    jc: usize,
    n: usize,
) {
    let (mr, nr) = (kern.mr(), kern.nr());
    for (ib, a_panel) in pack_a.chunks_exact(kc * mr).enumerate() {
        let i0 = ib * mr;
        let rows = mr.min(mc - i0);
        for (jb, b_panel) in pack_b.chunks_exact(kc * nr).enumerate() {
            let j0 = jb * nr;
            let cols = nr.min(nc - j0);
            let c_base = (ic + i0) * n + jc + j0;
            if rows == mr && cols == nr && kern != MicroKernel::Scalar {
                kern.full_tile(kc, a_panel, b_panel, &mut c[c_base..], n);
            } else {
                let mut tile = [0.0f32; simd::MAX_MR * simd::MAX_NR];
                kern.edge_tile(kc, a_panel, b_panel, &mut tile);
                simd::scatter_add(&tile, &mut c[c_base..], n, rows, cols, simd::MAX_NR);
            }
        }
    }
}

/// The straight-ported seed kernels, kept as the correctness oracle for
/// property tests and the baseline for `benches/gemm.rs`.
///
/// These are the exact loop nests the repository started with, minus the
/// `a == 0.0` skip branch (which penalized dense inputs; see
/// `docs/perf.md`).
pub mod reference {
    /// `C[m×n] += A[m×k] · B[k×n]`, naive blocked loops.
    pub fn matmul(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                let b_row = &b[p * n..(p + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_ip * b_pj;
                }
            }
        }
    }

    /// `C[m×n] += A[m×k] · Bᵀ` where `B` is `n×k` row-major.
    pub fn matmul_a_bt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), m * k);
        debug_assert_eq!(b.len(), n * k);
        debug_assert_eq!(c.len(), m * n);
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &b[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row) {
                    acc += x * y;
                }
                c[i * n + j] += acc;
            }
        }
    }

    /// `C[m×n] += Aᵀ · B` where `A` is `k×m` row-major and `B` is `k×n`.
    pub fn matmul_at_b(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
        debug_assert_eq!(a.len(), k * m);
        debug_assert_eq!(b.len(), k * n);
        debug_assert_eq!(c.len(), m * n);
        for p in 0..k {
            let a_row = &a[p * m..(p + 1) * m];
            let b_row = &b[p * n..(p + 1) * n];
            for (i, &a_pi) in a_row.iter().enumerate() {
                let c_row = &mut c[i * n..(i + 1) * n];
                for (c_ij, &b_pj) in c_row.iter_mut().zip(b_row) {
                    *c_ij += a_pi * b_pj;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn deterministic_matrix(rows: usize, cols: usize, salt: f32) -> Vec<f32> {
        (0..rows * cols)
            .map(|i| ((i as f32 * 0.37 + salt).sin()) * 0.5)
            .collect()
    }

    #[test]
    fn matmul_matches_naive() {
        let (m, k, n) = (5, 7, 6);
        let a = deterministic_matrix(m, k, 1.0);
        let b = deterministic_matrix(k, n, 2.0);
        let mut c = vec![0.0; m * n];
        matmul(&a, &b, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_accumulates_into_c() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let b = vec![2.0, 0.0, 0.0, 2.0];
        let mut c = vec![10.0; 4];
        matmul(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![12.0, 10.0, 10.0, 12.0]);
    }

    #[test]
    fn a_bt_matches_naive() {
        let (m, k, n) = (4, 5, 3);
        let a = deterministic_matrix(m, k, 3.0);
        // B stored as n×k; recover B (k×n) to run the naive reference.
        let b_t = deterministic_matrix(n, k, 4.0);
        let mut b = vec![0.0; k * n];
        for j in 0..n {
            for p in 0..k {
                b[p * n + j] = b_t[j * k + p];
            }
        }
        let mut c = vec![0.0; m * n];
        matmul_a_bt(&a, &b_t, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn at_b_matches_naive() {
        let (m, k, n) = (3, 6, 4);
        // A stored as k×m; recover A (m×k) for the naive reference.
        let a_t = deterministic_matrix(k, m, 5.0);
        let mut a = vec![0.0; m * k];
        for p in 0..k {
            for i in 0..m {
                a[i * k + p] = a_t[p * m + i];
            }
        }
        let b = deterministic_matrix(k, n, 6.0);
        let mut c = vec![0.0; m * n];
        matmul_at_b(&a_t, &b, &mut c, m, k, n);
        let expected = naive(&a, &b, m, k, n);
        for (x, y) in c.iter().zip(&expected) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn identity_is_neutral() {
        let n = 4;
        let mut eye = vec![0.0; n * n];
        for i in 0..n {
            eye[i * n + i] = 1.0;
        }
        let x = deterministic_matrix(n, n, 7.0);
        let mut c = vec![0.0; n * n];
        matmul(&eye, &x, &mut c, n, n, n);
        for (a, b) in c.iter().zip(&x) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn every_kernel_tier_crosses_every_blocking_boundary() {
        // Dimensions straddling MR/NR/MC/KC/NC edges, including primes.
        let cfg = GemmConfig::active();
        let dims = [
            (1, 1, 1),
            (3, 3, 15),
            (5, cfg.kc + 3, 17),
            (cfg.mc + 5, 7, 2 * 32 + 3),
            (17, cfg.kc - 1, 33),
        ];
        for imp in [GemmImpl::Tiled, GemmImpl::Simd] {
            for (m, k, n) in dims {
                let a = deterministic_matrix(m, k, 0.3);
                let b = deterministic_matrix(k, n, 0.7);
                let mut c = vec![0.0; m * n];
                matmul_with(imp, &a, &b, &mut c, m, k, n);
                let expected = naive(&a, &b, m, k, n);
                for (i, (x, y)) in c.iter().zip(&expected).enumerate() {
                    assert!(
                        (x - y).abs() < 1e-3,
                        "{imp:?} ({m},{k},{n}) mismatch at {i}: {x} vs {y}"
                    );
                }
            }
        }
    }

    #[test]
    fn large_parallel_product_matches_serial_bitwise_per_tier() {
        // Big enough to trip the row-block parallel path: results must be
        // identical to the serial blocked path, call after call, for every
        // kernel tier.
        let (m, k, n) = (3 * GemmConfig::active().mc + 7, 64, 96);
        let a = deterministic_matrix(m, k, 1.1);
        let b = deterministic_matrix(k, n, 2.2);
        for imp in [GemmImpl::Tiled, GemmImpl::Simd] {
            let kern = imp.micro_kernel();
            let mut c_par = vec![0.0; m * n];
            matmul_with(imp, &a, &b, &mut c_par, m, k, n);
            let mut c_serial = vec![0.0; m * n];
            gemm_serial(
                m,
                k,
                n,
                View {
                    data: &a,
                    rs: k,
                    cs: 1,
                },
                View {
                    data: &b,
                    rs: n,
                    cs: 1,
                },
                &mut c_serial,
                GemmConfig::active().normalized_for(kern.mr(), kern.nr()),
                kern,
            );
            assert_eq!(
                c_par, c_serial,
                "{imp:?}: parallel row blocking changed numerics"
            );
        }
    }

    #[test]
    fn config_normalization_respects_micro_kernel() {
        let mut kerns = vec![MicroKernel::Scalar];
        kerns.extend(MicroKernel::detect_simd());
        for kern in kerns {
            let cfg = GemmConfig {
                mc: 1,
                kc: 0,
                nc: 1,
            }
            .normalized_for(kern.mr(), kern.nr());
            assert_eq!(cfg.mc % kern.mr(), 0);
            assert_eq!(cfg.nc % kern.nr(), 0);
            assert!(cfg.kc >= 1);
            assert!(cfg.mc >= kern.mr() && cfg.nc >= kern.nr());
        }
    }

    #[test]
    fn tier_metadata_is_consistent() {
        assert_eq!(GemmImpl::Reference.name(), "reference");
        assert!(GemmImpl::Tiled.is_available());
        assert_eq!(GemmImpl::Tiled.isa(), "scalar");
        // Simd either resolves to a real ISA or honestly reports scalar
        // fallback.
        let simd = GemmImpl::Simd;
        if simd.is_available() {
            assert_ne!(simd.isa(), "scalar");
        } else {
            assert_eq!(simd.isa(), "scalar");
        }
        // The active tier must itself be runnable.
        assert!(GemmImpl::active().is_available());
    }

    #[test]
    fn kernel_stats_record_entry_calls() {
        let (m, k, n) = (64, 64, 64);
        let a = deterministic_matrix(m, k, 0.1);
        let b = deterministic_matrix(k, n, 0.2);
        let mut c = vec![0.0; m * n];
        let before: u64 = kernel_stats::snapshot().iter().map(|&(_, v)| v).sum();
        matmul_with(GemmImpl::Tiled, &a, &b, &mut c, m, k, n);
        let after: u64 = kernel_stats::snapshot().iter().map(|&(_, v)| v).sum();
        assert!(after > before, "no kernel class recorded");
        assert!(!kernel_stats::report().is_empty());
    }
}

//! A persistent worker pool shared by every compute-heavy path in the
//! workspace.
//!
//! The seed implementation spawned scoped OS threads on every call, which
//! put a thread-create/join on the critical path of every convolution
//! forward. This module instead lazily spawns one long-lived pool (sized by
//! `SAFELIGHT_THREADS` or [`std::thread::available_parallelism`]) and gives
//! callers three entry points:
//!
//! * [`scoped_map`] — run one closure per item, results in item order;
//! * [`join_chunks`] — split `0..n` into contiguous chunks (the seed API);
//! * `map_blocks` (crate-internal) — split `0..n` into **fixed-size** blocks, so the
//!   decomposition — and therefore any floating-point reduction order built
//!   on top of it — is independent of the worker count. This is what makes
//!   conv/linear backward bit-stable across thread counts.
//!
//! # Nested use and deadlock freedom
//!
//! Tasks may themselves call into the pool (a susceptibility trial runs
//! convolutions that fan out again). A blocked submitter never just parks:
//! it first drains and executes queued jobs (*help-first* scheduling) and
//! only sleeps once the queue is empty and all of its own tasks are running
//! on other threads, so the dependency DAG always makes progress.
//!
//! # Safety
//!
//! This is the one module in the workspace that uses `unsafe`: submitted
//! jobs borrow the caller's stack frame, and their lifetime is erased to
//! `'static` so the long-lived workers can hold them. Soundness rests on a
//! single invariant, upheld by [`scoped_map`]: **it never returns (or
//! unwinds) before every job it submitted has finished running** — task
//! panics are caught, counted, and re-thrown only after the whole group has
//! completed.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex, OnceLock};

/// A lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send>;

struct PoolState {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when new jobs arrive.
    available: Condvar,
}

/// The process-wide worker pool.
pub struct WorkerPool {
    state: &'static PoolState,
    workers: usize,
}

/// Returns the shared pool, spawning its workers on first use.
///
/// The worker count is `SAFELIGHT_THREADS` when set (minimum 1), otherwise
/// the machine's available parallelism.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = configured_threads();
        let state: &'static PoolState = Box::leak(Box::new(PoolState {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("safelight-worker-{i}"))
                .spawn(move || worker_loop(state))
                .expect("failed to spawn pool worker");
        }
        WorkerPool { state, workers }
    })
}

/// The worker count the pool uses (or will use): `SAFELIGHT_THREADS` when
/// set, otherwise the machine's available parallelism. Unlike
/// [`pool_size`], this never spawns the pool — use it to size defaults in
/// configuration structs.
#[must_use]
pub fn configured_threads() -> usize {
    std::env::var("SAFELIGHT_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get)
        })
        .max(1)
}

/// Number of OS worker threads in the shared pool (spawning it on first
/// use).
#[must_use]
pub fn pool_size() -> usize {
    pool().workers
}

fn worker_loop(state: &'static PoolState) {
    loop {
        let job = {
            let mut queue = state.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                queue = state.available.wait(queue).expect("pool queue poisoned");
            }
        };
        job();
    }
}

/// Completion tracking for one `scoped_map` call.
struct TaskGroup {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl TaskGroup {
    fn new(tasks: usize) -> Self {
        Self {
            remaining: Mutex::new(tasks),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete_one(&self) {
        let mut remaining = self.remaining.lock().expect("task group poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("task group poisoned") == 0
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("task group poisoned");
        slot.get_or_insert(payload);
    }

    /// Blocks until every task in the group has completed.
    fn wait_done(&self) {
        let mut remaining = self.remaining.lock().expect("task group poisoned");
        while *remaining > 0 {
            remaining = self.done.wait(remaining).expect("task group poisoned");
        }
    }

    /// Re-throws the first captured task panic, if any.
    fn propagate_panic(&self) {
        let payload = self.panic.lock().expect("task group poisoned").take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

/// Erases a job's borrow lifetime so pool workers can hold it.
///
/// # Safety
///
/// The caller must guarantee the job runs to completion before anything it
/// borrows is dropped — i.e. the submitting frame must block until the job
/// group is done, on both the success and the panic path.
#[allow(unsafe_code)]
fn erase_job(job: Box<dyn FnOnce() + Send + '_>) -> Job {
    // SAFETY: only a lifetime parameter changes; the vtable and layout of
    // the fat pointer are identical. `scoped_map` upholds the completion
    // invariant documented above.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(job) }
}

/// Runs `work` over `items` on the shared pool, returning results in item
/// order. The calling thread participates (help-first), so this is safe to
/// use from inside another pool task.
///
/// A panic in any `work` call is re-thrown here after all items finished.
pub fn scoped_map<T, R, F>(items: Vec<T>, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        let mut items = items;
        return vec![work(items.pop().expect("one item"))];
    }

    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let group = TaskGroup::new(n);
    {
        let work = &work;
        let slots = &slots;
        let group = &group;
        let jobs: Vec<Job> = items
            .into_iter()
            .enumerate()
            .map(|(i, item)| {
                erase_job(Box::new(move || {
                    match catch_unwind(AssertUnwindSafe(|| work(item))) {
                        Ok(result) => {
                            *slots[i].lock().expect("result slot poisoned") = Some(result);
                        }
                        Err(payload) => group.record_panic(payload),
                    }
                    group.complete_one();
                }))
            })
            .collect();

        let pool = pool();
        {
            let mut queue = pool.state.queue.lock().expect("pool queue poisoned");
            queue.extend(jobs);
        }
        pool.state.available.notify_all();

        // Help-first wait: run queued jobs (ours or anyone's) until our
        // group completes; sleep only when the queue is empty.
        loop {
            if group.is_done() {
                break;
            }
            let job = pool
                .state
                .queue
                .lock()
                .expect("pool queue poisoned")
                .pop_front();
            match job {
                Some(job) => job(),
                None => group.wait_done(),
            }
        }
    }
    group.propagate_panic();
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("completed task filled its slot")
        })
        .collect()
}

/// Maps `items` through `work` in item order, on the pool when
/// `threads > 1`. Drop-in replacement for the seed's per-call scoped
/// thread fan-out used by the evaluation pipelines.
///
/// `threads` bounds the concurrency like the seed API did: items are
/// grouped into at most `threads` contiguous chunks, each processed
/// serially by one pool task, so `threads = 2` occupies at most two
/// workers however large the shared pool is. Results keep item order
/// regardless of the grouping.
pub fn par_map<T, R, F>(items: Vec<T>, threads: usize, work: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() <= 1 {
        return items.into_iter().map(work).collect();
    }
    if threads >= items.len() {
        return scoped_map(items, work);
    }
    let chunk = items.len().div_ceil(threads);
    let mut items = items;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    while !items.is_empty() {
        let rest = items.split_off(chunk.min(items.len()));
        chunks.push(std::mem::replace(&mut items, rest));
    }
    let work = &work;
    scoped_map(chunks, |chunk| {
        chunk.into_iter().map(work).collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Splits `0..n` into at most `threads` contiguous chunks and runs `work`
/// on each chunk, on the shared pool when `threads > 1`.
///
/// `work` receives `(start, end)` half-open ranges. Results come back one
/// per chunk, in chunk order. The chunk layout depends only on `(n,
/// threads)`, never on the pool size.
pub fn join_chunks<R, F>(n: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return vec![work(0, n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect();
    scoped_map(ranges, |(s, e)| work(s, e))
}

/// Splits `0..n` into fixed-size blocks of `block` items and runs `work`
/// on each, returning results in block order.
///
/// Because the block boundaries depend only on `(n, block)`, reducing the
/// per-block results *in order* yields a bitwise-identical floating-point
/// sum no matter how many workers the pool has — the contract conv/linear
/// backward rely on. Set `parallel = false` to run inline (still the same
/// block layout, hence the same numerics).
pub(crate) fn map_blocks<R, F>(n: usize, block: usize, parallel: bool, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let block = block.max(1);
    let ranges: Vec<(usize, usize)> = (0..n.div_ceil(block))
        .map(|b| (b * block, ((b + 1) * block).min(n)))
        .collect();
    if !parallel || ranges.len() <= 1 {
        return ranges.into_iter().map(|(s, e)| work(s, e)).collect();
    }
    scoped_map(ranges, |(s, e)| work(s, e))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_full_range_without_overlap() {
        let results = join_chunks(10, 3, |s, e| (s, e));
        let mut covered = [false; 10];
        for (s, e) in results {
            for (i, slot) in covered.iter_mut().enumerate().take(e).skip(s) {
                assert!(!*slot, "index {i} covered twice");
                *slot = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn single_thread_is_one_chunk() {
        let results = join_chunks(5, 1, |s, e| (s, e));
        assert_eq!(results, vec![(0, 5)]);
    }

    #[test]
    fn empty_range_still_calls_once() {
        let results = join_chunks(0, 4, |s, e| e - s);
        assert_eq!(results, vec![0]);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let data: Vec<u64> = (0..1000).collect();
        let partials = join_chunks(data.len(), 4, |s, e| data[s..e].iter().sum::<u64>());
        assert_eq!(partials.into_iter().sum::<u64>(), 499_500);
    }

    #[test]
    fn scoped_map_preserves_order() {
        let out = scoped_map((0..256).collect::<Vec<i64>>(), |x| x * 3);
        assert_eq!(out, (0..256).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_map_borrows_caller_state() {
        let data: Vec<u64> = (0..10_000).collect();
        let chunks: Vec<(usize, usize)> = (0..10).map(|i| (i * 1000, (i + 1) * 1000)).collect();
        let sums = scoped_map(chunks, |(s, e)| data[s..e].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_scoped_map_completes() {
        // Outer fan-out whose tasks fan out again; exercises the
        // help-first path that prevents pool self-deadlock.
        let out = scoped_map((0..8).collect::<Vec<usize>>(), |i| {
            scoped_map((0..8).collect::<Vec<usize>>(), |j| i * 8 + j)
                .into_iter()
                .sum::<usize>()
        });
        let total: usize = out.into_iter().sum();
        assert_eq!(total, (0..64).sum::<usize>());
    }

    #[test]
    fn task_panic_propagates_after_group_completes() {
        let result = std::panic::catch_unwind(|| {
            scoped_map((0..16).collect::<Vec<usize>>(), |i| {
                assert!(i != 7, "boom");
                i
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn map_blocks_layout_is_thread_count_invariant() {
        let serial = map_blocks(23, 4, false, |s, e| (s, e));
        let parallel = map_blocks(23, 4, true, |s, e| (s, e));
        assert_eq!(serial, parallel);
        assert_eq!(serial.first(), Some(&(0, 4)));
        assert_eq!(serial.last(), Some(&(20, 23)));
    }

    #[test]
    fn par_map_preserves_order_and_matches_serial() {
        let a = par_map((0..100).collect::<Vec<i32>>(), 1, |x| x * 2);
        let b = par_map((0..100).collect::<Vec<i32>>(), 4, |x| x * 2);
        assert_eq!(a, b);
    }

    #[test]
    fn pool_reports_at_least_one_worker() {
        assert!(pool_size() >= 1);
    }
}

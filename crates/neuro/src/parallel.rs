//! Tiny scoped-thread fork/join helper used by the compute-heavy layers.

/// Splits `0..n` into at most `threads` contiguous chunks and runs `work`
/// on each chunk, in parallel when `threads > 1`.
///
/// `work` receives `(start, end)` half-open ranges. The function returns
/// one result per chunk, in chunk order, so callers can reduce (e.g. sum
/// per-thread gradient buffers).
pub(crate) fn join_chunks<R, F>(n: usize, threads: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return vec![work(0, n)];
    }
    let chunk = n.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|t| (t * chunk, ((t + 1) * chunk).min(n)))
        .filter(|(s, e)| s < e)
        .collect();
    let work = &work;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .iter()
            .map(|&(s, e)| scope.spawn(move || work(s, e)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_full_range_without_overlap() {
        let results = join_chunks(10, 3, |s, e| (s, e));
        let mut covered = vec![false; 10];
        for (s, e) in results {
            for i in s..e {
                assert!(!covered[i], "index {i} covered twice");
                covered[i] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn single_thread_is_one_chunk() {
        let results = join_chunks(5, 1, |s, e| (s, e));
        assert_eq!(results, vec![(0, 5)]);
    }

    #[test]
    fn empty_range_still_calls_once() {
        let results = join_chunks(0, 4, |s, e| e - s);
        assert_eq!(results, vec![0]);
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let data: Vec<u64> = (0..1000).collect();
        let partials = join_chunks(data.len(), 4, |s, e| data[s..e].iter().sum::<u64>());
        assert_eq!(partials.into_iter().sum::<u64>(), 499_500);
    }
}

//! Explicit SIMD micro-kernels for the f32 GEMM engine.
//!
//! The tiled engine in [`crate::linalg`] lowers every product onto packed
//! `MR×NR` register tiles. This module supplies the tile kernels:
//!
//! * **Scalar** — the portable `4×16` loop nest the engine shipped with.
//!   It autovectorizes, but the compiler will not contract `a*b + c` into
//!   fused multiply-adds (Rust keeps strict FP semantics), so it leaves
//!   half the machine's FMA throughput unused.
//! * **Avx2Fma** — a `6×16` kernel on 256-bit registers with explicit
//!   `vfmadd` accumulation: 12 accumulator registers, two B loads and one
//!   A broadcast per depth step (15 of 16 ymm registers live).
//! * **Avx512** — the same shape widened to `6×32` on 512-bit registers
//!   (12 zmm accumulators out of 32, giving the scheduler slack to hide
//!   FMA latency).
//!
//! Which kernel runs is decided **once per process** by runtime CPU
//! feature detection (`is_x86_feature_detected!`), so binaries built for a
//! generic baseline still use the wide kernels on capable machines, and
//! the choice cannot differ between worker threads — per-kernel results
//! stay bitwise identical across thread counts. On non-x86 targets only
//! the scalar kernel exists.
//!
//! Numerics: the FMA kernels round once per multiply-add where the scalar
//! kernel rounds twice, so SIMD results differ from scalar results by
//! normal floating-point reassociation noise (bounded by the
//! `simd-vs-tiled` property tests in `tests/linalg_props.rs`); each kernel
//! is individually deterministic.

// The micro-kernels are the workspace's only other `unsafe` besides the
// worker pool's scoped-job lifetime erasure: `#[target_feature]` functions
// are callable only after the matching `is_x86_feature_detected!` check,
// which `MicroKernel::detect` performs exactly once.
#![allow(unsafe_code)]

/// Widest tile any kernel produces, for stack edge buffers.
pub(crate) const MAX_MR: usize = 6;
/// Widest tile columns any kernel produces.
pub(crate) const MAX_NR: usize = 32;

/// A register-blocked `MR×NR` tile kernel over packed panels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MicroKernel {
    /// Portable 4×16 loop nest (autovectorized, no FMA contraction).
    Scalar,
    /// 6×16 AVX2 + FMA kernel (x86-64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx2Fma,
    /// 6×32 AVX-512F kernel (x86-64, runtime-detected).
    #[cfg(target_arch = "x86_64")]
    Avx512,
}

impl MicroKernel {
    /// The widest kernel this machine supports, detected once.
    pub(crate) fn detect() -> Self {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx512f") {
                return Self::Avx512;
            }
            if std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
            {
                return Self::Avx2Fma;
            }
        }
        Self::Scalar
    }

    /// The SIMD kernel for this machine, if any.
    pub(crate) fn detect_simd() -> Option<Self> {
        match Self::detect() {
            Self::Scalar => None,
            simd => Some(simd),
        }
    }

    /// Tile rows.
    pub(crate) fn mr(self) -> usize {
        match self {
            Self::Scalar => 4,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2Fma | Self::Avx512 => 6,
        }
    }

    /// Tile columns.
    pub(crate) fn nr(self) -> usize {
        match self {
            Self::Scalar => 16,
            #[cfg(target_arch = "x86_64")]
            Self::Avx2Fma => 16,
            #[cfg(target_arch = "x86_64")]
            Self::Avx512 => 32,
        }
    }

    /// Human-readable instruction-set label for reports and docs.
    pub(crate) fn isa_name(self) -> &'static str {
        match self {
            Self::Scalar => "scalar",
            #[cfg(target_arch = "x86_64")]
            Self::Avx2Fma => "avx2+fma",
            #[cfg(target_arch = "x86_64")]
            Self::Avx512 => "avx512f",
        }
    }

    /// Rank-`kc` update of one full `MR×NR` tile, accumulating straight
    /// into `c` (row stride `ldc`). `a_panel` holds `kc` groups of `MR`
    /// values, `b_panel` `kc` groups of `NR` values.
    #[inline]
    pub(crate) fn full_tile(
        self,
        kc: usize,
        a_panel: &[f32],
        b_panel: &[f32],
        c: &mut [f32],
        ldc: usize,
    ) {
        debug_assert!(a_panel.len() >= kc * self.mr());
        debug_assert!(b_panel.len() >= kc * self.nr());
        debug_assert!(c.len() >= (self.mr() - 1) * ldc + self.nr());
        match self {
            Self::Scalar => {
                let mut tile = [0.0f32; MAX_MR * MAX_NR];
                scalar_tile(kc, a_panel, b_panel, &mut tile);
                scatter_add(&tile, c, ldc, 4, 16, MAX_NR);
            }
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `detect` verified the features; slice bounds checked
            // by the debug asserts above and the callers' packed layouts.
            Self::Avx2Fma => unsafe {
                avx2_6x16_full(kc, a_panel.as_ptr(), b_panel.as_ptr(), c.as_mut_ptr(), ldc);
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above.
            Self::Avx512 => unsafe {
                avx512_6x32_full(kc, a_panel.as_ptr(), b_panel.as_ptr(), c.as_mut_ptr(), ldc);
            },
        }
    }

    /// Rank-`kc` update of a partial tile: the full `MR×NR` accumulator is
    /// computed into `tile` (row stride `NR`) and the caller scatters the
    /// valid `rows×cols` region.
    #[inline]
    pub(crate) fn edge_tile(
        self,
        kc: usize,
        a_panel: &[f32],
        b_panel: &[f32],
        tile: &mut [f32; MAX_MR * MAX_NR],
    ) {
        match self {
            Self::Scalar => scalar_tile(kc, a_panel, b_panel, tile),
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `detect` verified the features; the tile buffer is
            // MAX_MR×MAX_NR ≥ 6×16.
            Self::Avx2Fma => unsafe {
                avx2_6x16_tile(kc, a_panel.as_ptr(), b_panel.as_ptr(), tile.as_mut_ptr());
            },
            #[cfg(target_arch = "x86_64")]
            // SAFETY: as above; the tile buffer is MAX_MR×MAX_NR = 6×32.
            Self::Avx512 => unsafe {
                avx512_6x32_tile(kc, a_panel.as_ptr(), b_panel.as_ptr(), tile.as_mut_ptr());
            },
        }
    }
}

/// Adds the valid `rows×cols` region of a `tile` (row stride `tile_ld`)
/// into `c` (row stride `ldc`).
#[inline]
pub(crate) fn scatter_add(
    tile: &[f32],
    c: &mut [f32],
    ldc: usize,
    rows: usize,
    cols: usize,
    tile_ld: usize,
) {
    for i in 0..rows {
        let src = &tile[i * tile_ld..i * tile_ld + cols];
        let dst = &mut c[i * ldc..i * ldc + cols];
        for (d, s) in dst.iter_mut().zip(src) {
            *d += s;
        }
    }
}

/// The portable 4×16 kernel: local accumulator arrays the compiler keeps
/// in vector registers. Bit-identical to the engine's original
/// `micro_kernel` (same loop nest, same order). Rows land in `tile` at
/// stride [`MAX_NR`], like every other kernel's edge path.
fn scalar_tile(kc: usize, a_panel: &[f32], b_panel: &[f32], tile: &mut [f32; MAX_MR * MAX_NR]) {
    const MR: usize = 4;
    const NR: usize = 16;
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..kc {
        let a_col: &[f32] = &a_panel[p * MR..(p + 1) * MR];
        let b_row: &[f32] = &b_panel[p * NR..(p + 1) * NR];
        for i in 0..MR {
            let a_ip = a_col[i];
            let acc_row = &mut acc[i];
            for j in 0..NR {
                acc_row[j] += a_ip * b_row[j];
            }
        }
    }
    for (i, acc_row) in acc.iter().enumerate() {
        tile[i * MAX_NR..i * MAX_NR + NR].copy_from_slice(acc_row);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::{
        __m256, __m512, _mm256_add_ps, _mm256_fmadd_ps, _mm256_loadu_ps, _mm256_set1_ps,
        _mm256_setzero_ps, _mm256_storeu_ps, _mm512_add_ps, _mm512_fmadd_ps, _mm512_loadu_ps,
        _mm512_set1_ps, _mm512_setzero_ps, _mm512_storeu_ps,
    };

    /// 6×16 AVX2+FMA accumulator loop shared by the full-tile and
    /// edge-tile entry points.
    #[inline(always)]
    unsafe fn avx2_accumulate(kc: usize, a: *const f32, b: *const f32) -> [[__m256; 2]; 6] {
        let mut acc = [[_mm256_setzero_ps(); 2]; 6];
        for p in 0..kc {
            let b0 = _mm256_loadu_ps(b.add(p * 16));
            let b1 = _mm256_loadu_ps(b.add(p * 16 + 8));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm256_set1_ps(*a.add(p * 6 + i));
                row[0] = _mm256_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm256_fmadd_ps(ai, b1, row[1]);
            }
        }
        acc
    }

    /// Full 6×16 tile, accumulating into C.
    ///
    /// Safety: requires AVX2+FMA, `a`/`b` panels of at least `kc*6` /
    /// `kc*16` elements and 6 C rows of 16 writable elements at stride
    /// `ldc`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn avx2_6x16_full(
        kc: usize,
        a: *const f32,
        b: *const f32,
        c: *mut f32,
        ldc: usize,
    ) {
        let acc = avx2_accumulate(kc, a, b);
        for (i, row) in acc.iter().enumerate() {
            let cr = c.add(i * ldc);
            _mm256_storeu_ps(cr, _mm256_add_ps(_mm256_loadu_ps(cr), row[0]));
            _mm256_storeu_ps(cr.add(8), _mm256_add_ps(_mm256_loadu_ps(cr.add(8)), row[1]));
        }
    }

    /// Full 6×16 accumulator written to a dense tile buffer (stride
    /// [`super::MAX_NR`]) for edge scattering.
    ///
    /// Safety: requires AVX2+FMA and panels as in [`avx2_6x16_full`];
    /// `tile` must hold `MAX_MR*MAX_NR` elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(super) unsafe fn avx2_6x16_tile(kc: usize, a: *const f32, b: *const f32, tile: *mut f32) {
        let acc = avx2_accumulate(kc, a, b);
        for (i, row) in acc.iter().enumerate() {
            let tr = tile.add(i * super::MAX_NR);
            _mm256_storeu_ps(tr, row[0]);
            _mm256_storeu_ps(tr.add(8), row[1]);
        }
    }

    /// 6×32 AVX-512F accumulator loop shared by both entry points.
    #[inline(always)]
    unsafe fn avx512_accumulate(kc: usize, a: *const f32, b: *const f32) -> [[__m512; 2]; 6] {
        let mut acc = [[_mm512_setzero_ps(); 2]; 6];
        for p in 0..kc {
            let b0 = _mm512_loadu_ps(b.add(p * 32));
            let b1 = _mm512_loadu_ps(b.add(p * 32 + 16));
            for (i, row) in acc.iter_mut().enumerate() {
                let ai = _mm512_set1_ps(*a.add(p * 6 + i));
                row[0] = _mm512_fmadd_ps(ai, b0, row[0]);
                row[1] = _mm512_fmadd_ps(ai, b1, row[1]);
            }
        }
        acc
    }

    /// Full 6×32 tile, accumulating into C.
    ///
    /// Safety: requires AVX-512F, `a`/`b` panels of at least `kc*6` /
    /// `kc*32` elements and 6 C rows of 32 writable elements at stride
    /// `ldc`.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn avx512_6x32_full(
        kc: usize,
        a: *const f32,
        b: *const f32,
        c: *mut f32,
        ldc: usize,
    ) {
        let acc = avx512_accumulate(kc, a, b);
        for (i, row) in acc.iter().enumerate() {
            let cr = c.add(i * ldc);
            _mm512_storeu_ps(cr, _mm512_add_ps(_mm512_loadu_ps(cr), row[0]));
            _mm512_storeu_ps(
                cr.add(16),
                _mm512_add_ps(_mm512_loadu_ps(cr.add(16)), row[1]),
            );
        }
    }

    /// Full 6×32 accumulator written to a dense tile buffer (stride
    /// [`super::MAX_NR`]).
    ///
    /// Safety: requires AVX-512F and panels as in [`avx512_6x32_full`];
    /// `tile` must hold `MAX_MR*MAX_NR` elements.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn avx512_6x32_tile(kc: usize, a: *const f32, b: *const f32, tile: *mut f32) {
        let acc = avx512_accumulate(kc, a, b);
        for (i, row) in acc.iter().enumerate() {
            let tr = tile.add(i * super::MAX_NR);
            _mm512_storeu_ps(tr, row[0]);
            _mm512_storeu_ps(tr.add(16), row[1]);
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{avx2_6x16_full, avx2_6x16_tile, avx512_6x32_full, avx512_6x32_tile};

#[cfg(test)]
mod tests {
    use super::*;

    fn panels(kc: usize, mr: usize, nr: usize) -> (Vec<f32>, Vec<f32>) {
        let a: Vec<f32> = (0..kc * mr).map(|i| ((i as f32) * 0.31).sin()).collect();
        let b: Vec<f32> = (0..kc * nr).map(|i| ((i as f32) * 0.17).cos()).collect();
        (a, b)
    }

    /// Dense reference for one packed tile product.
    fn tile_reference(kc: usize, mr: usize, nr: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f64; mr * nr];
        for p in 0..kc {
            for i in 0..mr {
                for j in 0..nr {
                    out[i * nr + j] += f64::from(a[p * mr + i]) * f64::from(b[p * nr + j]);
                }
            }
        }
        out.into_iter().map(|v| v as f32).collect()
    }

    #[test]
    fn every_available_kernel_matches_the_widened_reference() {
        let mut kernels = vec![MicroKernel::Scalar];
        kernels.extend(MicroKernel::detect_simd());
        for kern in kernels {
            let (mr, nr) = (kern.mr(), kern.nr());
            for kc in [1usize, 2, 7, 64, 257] {
                let (a, b) = panels(kc, mr, nr);
                let expect = tile_reference(kc, mr, nr, &a, &b);
                // Edge path.
                let mut tile = [0.0f32; MAX_MR * MAX_NR];
                kern.edge_tile(kc, &a, &b, &mut tile);
                for i in 0..mr {
                    for j in 0..nr {
                        let got = tile[i * MAX_NR + j];
                        let want = expect[i * nr + j];
                        assert!(
                            (got - want).abs() < 1e-4 * (kc as f32),
                            "{kern:?} edge ({i},{j}) kc={kc}: {got} vs {want}"
                        );
                    }
                }
                // Full-tile path accumulates on top of existing C.
                let mut c = vec![1.0f32; mr * nr];
                kern.full_tile(kc, &a, &b, &mut c, nr);
                for i in 0..mr {
                    for j in 0..nr {
                        let got = c[i * nr + j] - 1.0;
                        let want = expect[i * nr + j];
                        assert!(
                            (got - want).abs() < 1e-4 * (kc as f32),
                            "{kern:?} full ({i},{j}) kc={kc}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn detection_is_stable_across_calls() {
        assert_eq!(MicroKernel::detect(), MicroKernel::detect());
    }
}

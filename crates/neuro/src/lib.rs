//! A minimal, dependency-light CPU tensor and convolutional-neural-network
//! library.
//!
//! This crate replaces the PyTorch training/inference stack the SafeLight
//! paper uses. It provides exactly what the paper's evaluation needs and no
//! more:
//!
//! * a dense [`Tensor`] with the blocked matrix kernels behind it;
//! * CNN layers — [`Conv2d`], [`Linear`], [`MaxPool2d`], [`BatchNorm2d`],
//!   [`Relu`], [`Flatten`] — each with hand-written forward *and* backward
//!   passes (verified against finite differences in the test suite);
//! * residual blocks and a [`Network`] container able to express the
//!   paper's three models (CNN_1, a ResNet-18-style network, a VGG16
//!   variant);
//! * softmax cross-entropy loss, SGD with momentum, **L2 regularization**
//!   via weight decay (§V.A of the paper), and **Gaussian noise-aware
//!   training** (§V.B) in the [`Trainer`];
//! * deterministic data pipelines and metrics.
//!
//! # Example
//!
//! Train a tiny classifier on an in-memory dataset:
//!
//! ```
//! use safelight_neuro::{
//!     InMemoryDataset, Linear, Network, Relu, Tensor, Trainer, TrainerConfig,
//! };
//!
//! # fn main() -> Result<(), safelight_neuro::NeuroError> {
//! // A 2-feature, 2-class toy problem: class = sign of the first feature.
//! let mut images = Vec::new();
//! let mut labels = Vec::new();
//! for i in 0..64 {
//!     let x = if i % 2 == 0 { 1.0 } else { -1.0 };
//!     images.push(Tensor::from_vec(vec![2], vec![x, 0.5])?);
//!     labels.push(usize::from(i % 2 == 0));
//! }
//! let data = InMemoryDataset::new(images, labels)?;
//!
//! let mut net = Network::new();
//! net.push(Linear::new(2, 8, 1)?);
//! net.push(Relu::new());
//! net.push(Linear::new(8, 2, 2)?);
//!
//! let config = TrainerConfig { epochs: 20, batch_size: 8, ..TrainerConfig::default() };
//! let report = Trainer::new(config).fit(&mut net, &data)?;
//! assert!(report.final_train_accuracy > 0.95);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: three modules carry documented `unsafe`
// behind local `allow`s — the worker pool in `parallel` (scoped-job
// lifetime erasure) and the runtime-detected SIMD kernels in `simd` and
// `linalg::int` (arch intrinsics guarded by CPU feature detection).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod data;
mod error;
pub mod fft;
mod init;
pub mod layers;
pub mod linalg;
mod loss;
mod metrics;
mod model;
mod optim;
pub mod parallel;
mod rng;
mod scratch;
mod serialize;
mod simd;
mod tensor;
mod train;

pub use data::{Dataset, InMemoryDataset, Subset};
pub use error::NeuroError;
pub use init::{he_normal, xavier_uniform};
pub use layers::{
    BatchNorm2d, Conv2d, Flatten, GlobalAvgPool2d, IntSpec, Layer, Linear, MaxPool2d, Param, Relu,
    ResidualBlock,
};
pub use linalg::{matmul, matmul_a_bt, matmul_at_b, matmul_with, GemmImpl};
pub use loss::{softmax, softmax_cross_entropy};
pub use metrics::{accuracy, confusion_matrix};
pub use model::Network;
pub use optim::{Sgd, SgdConfig};
pub use rng::SimRng;
pub use serialize::{
    load_network_params, load_network_params_stamped, save_network_params,
    save_network_params_stamped,
};
pub use tensor::Tensor;
pub use train::{TrainReport, Trainer, TrainerConfig};

//! Flat binary save/load of network parameters.
//!
//! Trained model variants are cached on disk so the figure-reproduction
//! binaries do not retrain on every run. The format is a simple
//! little-endian stream — magic, version, parameter count, then per
//! parameter its rank, dimensions and `f32` data.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::model::Network;
use crate::NeuroError;

const MAGIC: &[u8; 4] = b"SLNN";
const VERSION: u32 = 1;

/// Saves all parameter values of `network` to `path`.
///
/// # Errors
///
/// Returns [`NeuroError::Io`] on filesystem errors.
///
/// # Example
///
/// ```no_run
/// use safelight_neuro::{save_network_params, Linear, Network};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut net = Network::new();
/// net.push(Linear::new(4, 2, 1)?);
/// save_network_params(&net, "model.slnn")?;
/// # Ok(())
/// # }
/// ```
pub fn save_network_params<P: AsRef<Path>>(network: &Network, path: P) -> Result<(), NeuroError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    let params = network.params();
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let shape = p.value.shape();
        w.write_all(&(shape.len() as u32).to_le_bytes())?;
        for &d in shape {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in p.value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads parameter values from `path` into `network`.
///
/// The network must already have the exact architecture the file was saved
/// from — this function restores values, it does not build layers.
///
/// # Errors
///
/// Returns [`NeuroError::MalformedModelFile`] when the file does not match
/// the network (wrong magic, version, count or shapes) and
/// [`NeuroError::Io`] on filesystem errors.
pub fn load_network_params<P: AsRef<Path>>(
    network: &mut Network,
    path: P,
) -> Result<(), NeuroError> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NeuroError::MalformedModelFile {
            context: "bad magic".into(),
        });
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(NeuroError::MalformedModelFile {
            context: format!("unsupported version {version}"),
        });
    }
    let count = read_u32(&mut r)? as usize;
    let mut params = network.params_mut();
    if params.len() != count {
        return Err(NeuroError::MalformedModelFile {
            context: format!("file has {count} parameters, network has {}", params.len()),
        });
    }
    for (i, param) in params.iter_mut().enumerate() {
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(&mut r)? as usize);
        }
        if shape != param.value.shape() {
            return Err(NeuroError::MalformedModelFile {
                context: format!(
                    "parameter {i}: file shape {shape:?} vs network {:?}",
                    param.value.shape()
                ),
            });
        }
        for v in param.value.as_mut_slice() {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, NeuroError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, NeuroError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "safelight-neuro-test-{name}-{}",
            std::process::id()
        ));
        p
    }

    fn build_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Linear::new(3, 4, seed).unwrap());
        net.push(Relu::new());
        net.push(Linear::new(4, 2, seed + 1).unwrap());
        net
    }

    #[test]
    fn save_load_round_trips_values() {
        let path = tmp_path("roundtrip");
        let source = build_net(10);
        save_network_params(&source, &path).unwrap();
        let mut target = build_net(99); // different init
        load_network_params(&mut target, &path).unwrap();
        for (a, b) in source.params().iter().zip(target.params().iter()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn architecture_mismatch_is_detected() {
        let path = tmp_path("mismatch");
        save_network_params(&build_net(1), &path).unwrap();
        let mut wrong = Network::new();
        wrong.push(Linear::new(3, 4, 0).unwrap());
        assert!(matches!(
            load_network_params(&mut wrong, &path),
            Err(NeuroError::MalformedModelFile { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"not a model").unwrap();
        let mut net = build_net(1);
        assert!(load_network_params(&mut net, &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut net = build_net(1);
        assert!(matches!(
            load_network_params(&mut net, "/nonexistent/safelight.slnn"),
            Err(NeuroError::Io { .. })
        ));
    }
}

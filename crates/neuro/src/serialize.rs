//! Flat binary save/load of network parameters.
//!
//! Trained model variants are cached on disk so the figure-reproduction
//! binaries do not retrain on every run. The format is a simple
//! little-endian stream — magic, version, a caller-supplied 64-bit
//! configuration stamp, parameter count, then per parameter its rank,
//! dimensions and `f32` data.
//!
//! The stamp exists so checkpoints are rejected — not silently loaded —
//! when anything upstream of the weights changed: the caller hashes
//! whatever configuration the weights depend on (training recipe, model
//! layout, accelerator profile) and the loader compares stamps before
//! touching any tensor data. Files written by format version 1 (which had
//! no stamp) are rejected outright for the same reason.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::model::Network;
use crate::NeuroError;

const MAGIC: &[u8; 4] = b"SLNN";
const VERSION: u32 = 2;

/// Saves all parameter values of `network` to `path`.
///
/// # Errors
///
/// Returns [`NeuroError::Io`] on filesystem errors.
///
/// # Example
///
/// ```no_run
/// use safelight_neuro::{save_network_params, Linear, Network};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut net = Network::new();
/// net.push(Linear::new(4, 2, 1)?);
/// save_network_params(&net, "model.slnn")?;
/// # Ok(())
/// # }
/// ```
pub fn save_network_params<P: AsRef<Path>>(network: &Network, path: P) -> Result<(), NeuroError> {
    save_network_params_stamped(network, path, 0)
}

/// Saves all parameter values of `network` to `path`, recording `stamp` —
/// a caller-computed hash of every configuration the weights depend on —
/// in the file header. [`load_network_params_stamped`] refuses to load the
/// file under a different stamp.
///
/// # Errors
///
/// Returns [`NeuroError::Io`] on filesystem errors.
pub fn save_network_params_stamped<P: AsRef<Path>>(
    network: &Network,
    path: P,
    stamp: u64,
) -> Result<(), NeuroError> {
    let file = File::create(path)?;
    let mut w = BufWriter::new(file);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&stamp.to_le_bytes())?;
    let params = network.params();
    w.write_all(&(params.len() as u32).to_le_bytes())?;
    for p in params {
        let shape = p.value.shape();
        w.write_all(&(shape.len() as u32).to_le_bytes())?;
        for &d in shape {
            w.write_all(&(d as u64).to_le_bytes())?;
        }
        for &v in p.value.as_slice() {
            w.write_all(&v.to_le_bytes())?;
        }
    }
    w.flush()?;
    Ok(())
}

/// Loads parameter values from `path` into `network`.
///
/// The network must already have the exact architecture the file was saved
/// from — this function restores values, it does not build layers.
///
/// # Errors
///
/// Returns [`NeuroError::MalformedModelFile`] when the file does not match
/// the network (wrong magic, version, count or shapes) and
/// [`NeuroError::Io`] on filesystem errors.
pub fn load_network_params<P: AsRef<Path>>(
    network: &mut Network,
    path: P,
) -> Result<(), NeuroError> {
    load_network_params_stamped(network, path, 0)
}

/// Loads parameter values from `path` into `network`, verifying that the
/// file was saved under configuration stamp `expected_stamp`.
///
/// This is the cache-integrity gate: a checkpoint trained under an older
/// recipe, model layout or accelerator profile carries a different stamp
/// and is rejected *before* any weights are read, instead of silently
/// loading stale data whose shapes happen to match.
///
/// # Errors
///
/// Returns [`NeuroError::MalformedModelFile`] when the file does not match
/// the network or the stamp (wrong magic, version, stamp, count or shapes)
/// and [`NeuroError::Io`] on filesystem errors.
pub fn load_network_params_stamped<P: AsRef<Path>>(
    network: &mut Network,
    path: P,
    expected_stamp: u64,
) -> Result<(), NeuroError> {
    let file = File::open(path)?;
    let mut r = BufReader::new(file);

    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(NeuroError::MalformedModelFile {
            context: "bad magic".into(),
        });
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(NeuroError::MalformedModelFile {
            context: format!("unsupported version {version}"),
        });
    }
    let stamp = read_u64(&mut r)?;
    if stamp != expected_stamp {
        return Err(NeuroError::MalformedModelFile {
            context: format!(
                "configuration stamp mismatch: file {stamp:#018x}, expected \
                 {expected_stamp:#018x} (checkpoint was written under a different \
                 recipe/layout — retrain instead of loading stale weights)"
            ),
        });
    }
    let count = read_u32(&mut r)? as usize;
    let mut params = network.params_mut();
    if params.len() != count {
        return Err(NeuroError::MalformedModelFile {
            context: format!("file has {count} parameters, network has {}", params.len()),
        });
    }
    for (i, param) in params.iter_mut().enumerate() {
        let rank = read_u32(&mut r)? as usize;
        let mut shape = Vec::with_capacity(rank);
        for _ in 0..rank {
            shape.push(read_u64(&mut r)? as usize);
        }
        if shape != param.value.shape() {
            return Err(NeuroError::MalformedModelFile {
                context: format!(
                    "parameter {i}: file shape {shape:?} vs network {:?}",
                    param.value.shape()
                ),
            });
        }
        for v in param.value.as_mut_slice() {
            let mut buf = [0u8; 4];
            r.read_exact(&mut buf)?;
            *v = f32::from_le_bytes(buf);
        }
    }
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32, NeuroError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> Result<u64, NeuroError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Linear, Relu};

    fn tmp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "safelight-neuro-test-{name}-{}",
            std::process::id()
        ));
        p
    }

    fn build_net(seed: u64) -> Network {
        let mut net = Network::new();
        net.push(Linear::new(3, 4, seed).unwrap());
        net.push(Relu::new());
        net.push(Linear::new(4, 2, seed + 1).unwrap());
        net
    }

    #[test]
    fn save_load_round_trips_values() {
        let path = tmp_path("roundtrip");
        let source = build_net(10);
        save_network_params(&source, &path).unwrap();
        let mut target = build_net(99); // different init
        load_network_params(&mut target, &path).unwrap();
        for (a, b) in source.params().iter().zip(target.params().iter()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice());
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn architecture_mismatch_is_detected() {
        let path = tmp_path("mismatch");
        save_network_params(&build_net(1), &path).unwrap();
        let mut wrong = Network::new();
        wrong.push(Linear::new(3, 4, 0).unwrap());
        assert!(matches!(
            load_network_params(&mut wrong, &path),
            Err(NeuroError::MalformedModelFile { .. })
        ));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn stamped_round_trip_verifies_the_stamp() {
        let path = tmp_path("stamped");
        let source = build_net(4);
        save_network_params_stamped(&source, &path, 0xDEAD_BEEF).unwrap();
        let mut target = build_net(5);
        load_network_params_stamped(&mut target, &path, 0xDEAD_BEEF).unwrap();
        for (a, b) in source.params().iter().zip(target.params().iter()) {
            assert_eq!(a.value.as_slice(), b.value.as_slice());
        }
        // A different stamp — a checkpoint from another configuration — is
        // rejected before any tensor data is read.
        let err = load_network_params_stamped(&mut target, &path, 0xDEAD_BEE0).unwrap_err();
        match err {
            NeuroError::MalformedModelFile { context } => {
                assert!(context.contains("stamp mismatch"), "{context}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        // The unstamped API implies stamp 0 and also refuses the file.
        assert!(load_network_params(&mut target, &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn version_one_files_are_rejected() {
        // A syntactically valid version-1 header (magic + version + count):
        // the pre-stamp format cannot prove which configuration produced
        // it, so loading must fail rather than guess.
        let path = tmp_path("v1");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"SLNN");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        let mut net = build_net(1);
        let err = load_network_params(&mut net, &path).unwrap_err();
        match err {
            NeuroError::MalformedModelFile { context } => {
                assert!(context.contains("unsupported version 1"), "{context}");
            }
            other => panic!("unexpected error {other:?}"),
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_rejected() {
        let path = tmp_path("garbage");
        std::fs::write(&path, b"not a model").unwrap();
        let mut net = build_net(1);
        assert!(load_network_params(&mut net, &path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let mut net = build_net(1);
        assert!(matches!(
            load_network_params(&mut net, "/nonexistent/safelight.slnn"),
            Err(NeuroError::Io { .. })
        ));
    }
}

//! Classification metrics.

use crate::data::Dataset;
use crate::model::Network;
use crate::NeuroError;

/// Classification accuracy of `network` over `dataset`, in `[0, 1]`.
///
/// Evaluates in inference mode (running batch-norm statistics, no noise),
/// batching `batch_size` images at a time.
///
/// # Errors
///
/// Propagates dataset and forward-pass errors.
///
/// # Example
///
/// ```
/// use safelight_neuro::{accuracy, InMemoryDataset, Linear, Network, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let data = InMemoryDataset::new(vec![Tensor::zeros(vec![2]); 4], vec![0, 0, 0, 0])?;
/// let mut net = Network::new();
/// net.push(Linear::new(2, 2, 1)?);
/// let acc = accuracy(&mut net, &data, 2)?;
/// assert!((0.0..=1.0).contains(&acc));
/// # Ok(())
/// # }
/// ```
pub fn accuracy<D: Dataset + ?Sized>(
    network: &mut Network,
    dataset: &D,
    batch_size: usize,
) -> Result<f64, NeuroError> {
    let batch_size = batch_size.max(1);
    let n = dataset.len();
    let mut correct = 0usize;
    let mut index = 0usize;
    while index < n {
        let end = (index + batch_size).min(n);
        let indices: Vec<usize> = (index..end).collect();
        let (batch, labels) = dataset.batch(&indices)?;
        let preds = network.predict(&batch)?;
        correct += preds.iter().zip(&labels).filter(|(p, l)| p == l).count();
        index = end;
    }
    Ok(correct as f64 / n as f64)
}

/// Confusion matrix `[true_class][predicted_class]` of `network` over
/// `dataset`.
///
/// # Errors
///
/// Propagates dataset and forward-pass errors.
pub fn confusion_matrix<D: Dataset + ?Sized>(
    network: &mut Network,
    dataset: &D,
    batch_size: usize,
) -> Result<Vec<Vec<usize>>, NeuroError> {
    let classes = dataset.classes();
    let mut matrix = vec![vec![0usize; classes]; classes];
    let batch_size = batch_size.max(1);
    let n = dataset.len();
    let mut index = 0usize;
    while index < n {
        let end = (index + batch_size).min(n);
        let indices: Vec<usize> = (index..end).collect();
        let (batch, labels) = dataset.batch(&indices)?;
        let preds = network.predict(&batch)?;
        for (p, l) in preds.iter().zip(&labels) {
            if *l < classes && *p < classes {
                matrix[*l][*p] += 1;
            }
        }
        index = end;
    }
    Ok(matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::InMemoryDataset;
    use crate::layers::{Layer, Linear};
    use crate::Tensor;

    /// A network whose prediction equals the argmax of the 2-feature input.
    fn identity_net() -> Network {
        let mut net = Network::new();
        let mut fc = Linear::new(2, 2, 1).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        net.push(fc);
        net
    }

    fn dataset() -> InMemoryDataset {
        let images = vec![
            Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap(), // class 0
            Tensor::from_vec(vec![2], vec![0.0, 1.0]).unwrap(), // class 1
            Tensor::from_vec(vec![2], vec![1.0, 0.0]).unwrap(), // class 0
            Tensor::from_vec(vec![2], vec![0.0, 1.0]).unwrap(), // class 1
        ];
        InMemoryDataset::new(images, vec![0, 1, 1, 1]).unwrap()
    }

    #[test]
    fn accuracy_counts_matches() {
        let mut net = identity_net();
        // Item 2 is mislabelled on purpose: expect 3/4.
        let acc = accuracy(&mut net, &dataset(), 3).unwrap();
        assert!((acc - 0.75).abs() < 1e-9);
    }

    #[test]
    fn accuracy_is_batch_size_invariant() {
        let mut net = identity_net();
        let a1 = accuracy(&mut net, &dataset(), 1).unwrap();
        let a4 = accuracy(&mut net, &dataset(), 4).unwrap();
        assert_eq!(a1, a4);
    }

    #[test]
    fn confusion_matrix_rows_sum_to_class_counts() {
        let mut net = identity_net();
        let m = confusion_matrix(&mut net, &dataset(), 2).unwrap();
        assert_eq!(m[0].iter().sum::<usize>(), 1);
        assert_eq!(m[1].iter().sum::<usize>(), 3);
        assert_eq!(m[1][0], 1); // the mislabelled item
    }
}

//! A dense, row-major, `f32` tensor.

use crate::NeuroError;

/// A dense tensor of `f32` values with a dynamic shape.
///
/// Storage is row-major (last axis contiguous). The type is deliberately
/// simple — no views, no broadcasting — because every consumer in this
/// workspace operates on whole, contiguous buffers and the explicitness
/// keeps the hand-written backward passes auditable.
///
/// # Example
///
/// ```
/// use safelight_neuro::Tensor;
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.])?;
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.get(&[1, 2])?, 6.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a zero-filled tensor of the given shape.
    #[must_use]
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor filled with `value`.
    #[must_use]
    pub fn full(shape: Vec<usize>, value: f32) -> Self {
        let len = shape.iter().product();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Wraps an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] when the buffer length does not
    /// equal the product of the dimensions.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f32>) -> Result<Self, NeuroError> {
        let len: usize = shape.iter().product();
        if len != data.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "Tensor::from_vec",
                expected: shape,
                actual: vec![data.len()],
            });
        }
        Ok(Self { shape, data })
    }

    /// The tensor's shape.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying buffer (row-major).
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterprets the buffer under a new shape of equal length.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] when the element counts differ.
    pub fn reshape(mut self, shape: Vec<usize>) -> Result<Self, NeuroError> {
        let len: usize = shape.iter().product();
        if len != self.data.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "Tensor::reshape",
                expected: shape,
                actual: self.shape,
            });
        }
        self.shape = shape;
        Ok(self)
    }

    /// Linear offset of a multi-dimensional index.
    fn offset(&self, index: &[usize]) -> Result<usize, NeuroError> {
        if index.len() != self.shape.len() || index.iter().zip(&self.shape).any(|(&i, &d)| i >= d) {
            return Err(NeuroError::ShapeMismatch {
                context: "Tensor::offset",
                expected: self.shape.clone(),
                actual: index.to_vec(),
            });
        }
        let mut off = 0;
        for (i, d) in index.iter().zip(&self.shape) {
            off = off * d + i;
        }
        Ok(off)
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] for a rank or bound violation.
    pub fn get(&self, index: &[usize]) -> Result<f32, NeuroError> {
        Ok(self.data[self.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] for a rank or bound violation.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<(), NeuroError> {
        let off = self.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<(), NeuroError> {
        if self.shape != other.shape {
            return Err(NeuroError::ShapeMismatch {
                context: "Tensor::axpy",
                expected: self.shape.clone(),
                actual: other.shape.clone(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// In-place multiplication by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        self.data.fill(value);
    }

    /// Sum of all elements.
    #[must_use]
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Root-mean-square of the elements (0 for an empty tensor).
    #[must_use]
    pub fn rms(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let ss: f32 = self.data.iter().map(|x| x * x).sum();
        (ss / self.data.len() as f32).sqrt()
    }

    /// Largest absolute element (0 for an empty tensor).
    #[must_use]
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// Index of the maximum element of a rank-1 tensor slice `[start, end)`.
    pub(crate) fn argmax_range(&self, start: usize, end: usize) -> usize {
        let mut best = start;
        for i in start..end {
            if self.data[i] > self.data[best] {
                best = i;
            }
        }
        best - start
    }
}

impl std::fmt::Display for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?} ({} elements)", self.shape, self.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_content() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.len(), 24);
        assert!(t.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_vec(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn get_set_round_trip() {
        let mut t = Tensor::zeros(vec![2, 3]);
        t.set(&[1, 2], 9.0).unwrap();
        assert_eq!(t.get(&[1, 2]).unwrap(), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn out_of_bounds_index_is_rejected() {
        let t = Tensor::zeros(vec![2, 3]);
        assert!(t.get(&[2, 0]).is_err());
        assert!(t.get(&[0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(vec![3, 2]).unwrap();
        assert_eq!(r.get(&[2, 1]).unwrap(), 6.0);
        assert!(r.clone().reshape(vec![7]).is_err());
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::full(vec![4], 1.0);
        let b = Tensor::full(vec![4], 2.0);
        a.axpy(0.5, &b).unwrap();
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-6));
        let c = Tensor::zeros(vec![5]);
        assert!(a.axpy(1.0, &c).is_err());
    }

    #[test]
    fn rms_and_max_abs() {
        let t = Tensor::from_vec(vec![4], vec![1., -1., 1., -3.]).unwrap();
        assert!((t.rms() - (12.0f32 / 4.0).sqrt()).abs() < 1e-6);
        assert_eq!(t.max_abs(), 3.0);
    }
}

//! Networks: ordered stacks of layers.

use crate::layers::{Layer, Param};
use crate::{NeuroError, Tensor};

/// A feed-forward network: an ordered stack of [`Layer`]s.
///
/// Residual topologies are expressed by pushing
/// [`ResidualBlock`](crate::ResidualBlock)s, which are themselves layers, so
/// one container covers all three of the paper's models.
///
/// # Example
///
/// ```
/// use safelight_neuro::{Flatten, Linear, Network, Relu, Tensor};
///
/// # fn main() -> Result<(), safelight_neuro::NeuroError> {
/// let mut net = Network::new();
/// net.push(Flatten::new());
/// net.push(Linear::new(16, 8, 1)?);
/// net.push(Relu::new());
/// net.push(Linear::new(8, 4, 2)?);
/// let logits = net.forward(&Tensor::zeros(vec![2, 1, 4, 4]), false)?;
/// assert_eq!(logits.shape(), &[2, 4]);
/// # Ok(())
/// # }
/// ```
#[derive(Default, Clone)]
pub struct Network {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.layers.iter().map(|l| l.name()).collect();
        f.debug_struct("Network")
            .field("layers", &names)
            .field("parameters", &self.parameter_count())
            .finish()
    }
}

impl Network {
    /// Creates an empty network.
    #[must_use]
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Layer names in order (useful for reports).
    #[must_use]
    pub fn layer_names(&self) -> Vec<&'static str> {
        self.layers.iter().map(|l| l.name()).collect()
    }

    /// Runs the network forward.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error (usually a shape mismatch).
    pub fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor, NeuroError> {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, train)?;
        }
        Ok(x)
    }

    /// Back-propagates a loss gradient, accumulating parameter gradients.
    ///
    /// # Errors
    ///
    /// Propagates layer errors; calling `backward` before `forward` is an
    /// error in any parameterized layer.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor, NeuroError> {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g)?;
        }
        Ok(g)
    }

    /// All trainable parameters, in layer order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Shared view of all trainable parameters, in layer order.
    #[must_use]
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| l.params()).collect()
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.params_mut() {
            p.zero_grad();
        }
    }

    /// Enables (`Some`) or disables (`None`) the integer inference
    /// datapath on every layer that implements one (see
    /// [`crate::layers::Layer::set_int_mode`]). Training passes are
    /// unaffected; layers without an integer path ignore the call.
    pub fn set_int_mode(&mut self, spec: Option<crate::layers::IntSpec>) {
        for layer in &mut self.layers {
            layer.set_int_mode(spec);
        }
    }

    /// Total number of trainable scalar parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.params().iter().map(|p| p.value.len()).sum()
    }

    /// Copies parameter *values* from `other` into this network.
    ///
    /// Both networks must have identical architecture. Used by the
    /// data-parallel trainer to refresh worker replicas and by the
    /// noise-aware trainer to restore clean weights.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] when the parameter lists differ
    /// in count or shape.
    pub fn copy_params_from(&mut self, other: &Network) -> Result<(), NeuroError> {
        let source = other.params();
        let mut dest = self.params_mut();
        if source.len() != dest.len() {
            return Err(NeuroError::ShapeMismatch {
                context: "copy_params_from: different parameter counts",
                expected: vec![source.len()],
                actual: vec![dest.len()],
            });
        }
        for (d, s) in dest.iter_mut().zip(source) {
            if d.value.shape() != s.value.shape() {
                return Err(NeuroError::ShapeMismatch {
                    context: "copy_params_from: parameter shape differs",
                    expected: s.value.shape().to_vec(),
                    actual: d.value.shape().to_vec(),
                });
            }
            d.value = s.value.clone();
        }
        Ok(())
    }

    /// Class predictions (row-wise argmax) for a batch.
    ///
    /// # Errors
    ///
    /// Propagates forward-pass errors; the final layer must produce `[N, C]`
    /// logits.
    pub fn predict(&mut self, input: &Tensor) -> Result<Vec<usize>, NeuroError> {
        let logits = self.forward(input, false)?;
        let shape = logits.shape();
        if shape.len() != 2 {
            return Err(NeuroError::ShapeMismatch {
                context: "predict expects the network to emit [N, C] logits",
                expected: vec![0, 0],
                actual: shape.to_vec(),
            });
        }
        let classes = shape[1];
        Ok((0..shape[0])
            .map(|row| logits.argmax_range(row * classes, (row + 1) * classes))
            .collect())
    }

    /// The batched forward entry point of the serving path: stacks the
    /// per-request CHW `images` into one `[N, C, H, W]` batch, runs a
    /// single forward pass and returns one class prediction per image, in
    /// input order.
    ///
    /// Borrowed images are copied once, straight into the batch buffer —
    /// callers holding tensors inside request structs don't need an
    /// intermediate `Vec<Tensor>` clone. An empty input yields an empty
    /// prediction vector without touching the network.
    ///
    /// # Errors
    ///
    /// Returns [`NeuroError::ShapeMismatch`] when the images disagree in
    /// shape, and propagates forward-pass errors.
    ///
    /// # Example
    ///
    /// ```
    /// use safelight_neuro::{Flatten, Linear, Network, Tensor};
    ///
    /// # fn main() -> Result<(), safelight_neuro::NeuroError> {
    /// let mut net = Network::new();
    /// net.push(Flatten::new());
    /// net.push(Linear::new(4, 2, 1)?);
    /// let requests = vec![Tensor::zeros(vec![1, 2, 2]); 3];
    /// assert_eq!(net.predict_many(&requests)?.len(), 3);
    /// # Ok(())
    /// # }
    /// ```
    pub fn predict_many<'a, I>(&mut self, images: I) -> Result<Vec<usize>, NeuroError>
    where
        I: IntoIterator<Item = &'a Tensor>,
    {
        let mut iter = images.into_iter();
        let Some(first) = iter.next() else {
            return Ok(Vec::new());
        };
        let shape = first.shape().to_vec();
        let mut data = first.as_slice().to_vec();
        let mut count = 1usize;
        for img in iter {
            if img.shape() != shape.as_slice() {
                return Err(NeuroError::ShapeMismatch {
                    context: "predict_many expects identically shaped images",
                    expected: shape.clone(),
                    actual: img.shape().to_vec(),
                });
            }
            data.extend_from_slice(img.as_slice());
            count += 1;
        }
        let mut batch_shape = vec![count];
        batch_shape.extend_from_slice(&shape);
        self.predict(&Tensor::from_vec(batch_shape, data)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Flatten, Linear, Relu};

    fn toy_net() -> Network {
        let mut net = Network::new();
        net.push(Flatten::new());
        net.push(Linear::new(4, 3, 1).unwrap());
        net.push(Relu::new());
        net.push(Linear::new(3, 2, 2).unwrap());
        net
    }

    #[test]
    fn forward_backward_round_trip() {
        let mut net = toy_net();
        let x = Tensor::full(vec![2, 1, 2, 2], 0.5);
        let y = net.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 2]);
        let gx = net.backward(&Tensor::full(vec![2, 2], 1.0)).unwrap();
        assert_eq!(gx.shape(), &[2, 1, 2, 2]);
    }

    #[test]
    fn parameter_count_sums_layers() {
        let net = toy_net();
        // (4·3 + 3) + (3·2 + 2) = 15 + 8 = 23
        assert_eq!(net.parameter_count(), 23);
    }

    #[test]
    fn zero_grad_clears_all() {
        let mut net = toy_net();
        let x = Tensor::full(vec![1, 1, 2, 2], 1.0);
        net.forward(&x, true).unwrap();
        net.backward(&Tensor::full(vec![1, 2], 1.0)).unwrap();
        assert!(net.params().iter().any(|p| p.grad.max_abs() > 0.0));
        net.zero_grad();
        assert!(net.params().iter().all(|p| p.grad.max_abs() == 0.0));
    }

    #[test]
    fn clone_is_deep() {
        let mut net = toy_net();
        let mut copy = net.clone();
        copy.params_mut()[0].value.fill(0.0);
        assert!(net.params_mut()[0].value.max_abs() > 0.0);
    }

    #[test]
    fn copy_params_from_synchronizes_values() {
        let mut a = toy_net();
        let b = toy_net();
        a.params_mut()[0].value.fill(7.0);
        let mut replica = b.clone();
        replica.copy_params_from(&a).unwrap();
        // The first parameter of the replica now matches `a`, not `b`.
        assert!(replica.params()[0]
            .value
            .as_slice()
            .iter()
            .all(|&v| v == 7.0));
    }

    #[test]
    fn predict_returns_argmax() {
        let mut net = Network::new();
        let mut fc = Linear::new(2, 2, 1).unwrap();
        fc.params_mut()[0].value = Tensor::from_vec(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        net.push(fc);
        let x = Tensor::from_vec(vec![2, 2], vec![3.0, 1.0, 0.0, 2.0]).unwrap();
        assert_eq!(net.predict(&x).unwrap(), vec![0, 1]);
    }

    #[test]
    fn predict_many_matches_per_item_prediction() {
        let mut net = toy_net();
        let images: Vec<Tensor> = (0..5)
            .map(|i| Tensor::full(vec![1, 2, 2], 0.1 + i as f32 * 0.3))
            .collect();
        let batched = net.predict_many(&images).unwrap();
        assert_eq!(batched.len(), 5);
        for (img, &expected) in images.iter().zip(&batched) {
            let mut batch_shape = vec![1usize];
            batch_shape.extend_from_slice(img.shape());
            let single = Tensor::from_vec(batch_shape, img.as_slice().to_vec()).unwrap();
            assert_eq!(net.predict(&single).unwrap(), vec![expected]);
        }
        // Empty input short-circuits.
        assert!(net
            .predict_many(std::iter::empty::<&Tensor>())
            .unwrap()
            .is_empty());
        // Ragged shapes are rejected.
        let ragged = vec![Tensor::zeros(vec![1, 2, 2]), Tensor::zeros(vec![1, 3, 3])];
        assert!(net.predict_many(&ragged).is_err());
    }

    #[test]
    fn debug_output_is_informative() {
        let net = toy_net();
        let dbg = format!("{net:?}");
        assert!(dbg.contains("linear") && dbg.contains("parameters"));
    }
}

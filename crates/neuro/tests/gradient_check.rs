//! Finite-difference verification of every hand-written backward pass.
//!
//! For each layer we check both the input gradient and the parameter
//! gradients of a scalar loss `L = Σ w_i · y_i` (with fixed random `w`)
//! against central differences. This is the strongest correctness evidence
//! a from-scratch NN library can carry.

use safelight_neuro::{
    BatchNorm2d, Conv2d, Layer, Linear, MaxPool2d, Relu, ResidualBlock, SimRng, Tensor,
};

/// Deterministic pseudo-random tensor.
fn random_tensor(shape: Vec<usize>, seed: u64) -> Tensor {
    let mut rng = SimRng::seed_from(seed);
    let mut t = Tensor::zeros(shape);
    for v in t.as_mut_slice() {
        *v = rng.gaussian_with(0.0, 0.7) as f32;
    }
    t
}

/// Scalar loss L = Σ w ⊙ y and its gradient w.r.t. y.
fn weighted_loss(y: &Tensor, weights: &Tensor) -> (f64, Tensor) {
    let loss = y
        .as_slice()
        .iter()
        .zip(weights.as_slice())
        .map(|(a, b)| f64::from(a * b))
        .sum();
    (loss, weights.clone())
}

/// Checks ∂L/∂input of `layer` against central differences.
fn check_input_gradient<L: Layer>(layer: &mut L, input: &Tensor, tol: f64) {
    let y = layer.forward(input, true).unwrap();
    let loss_weights = random_tensor(y.shape().to_vec(), 7777);
    let (_, dy) = weighted_loss(&y, &loss_weights);
    let analytic = layer.backward(&dy).unwrap();

    let eps = 1e-3f32;
    // Probe a deterministic sample of positions (all, for small tensors).
    let stride = (input.len() / 64).max(1);
    for i in (0..input.len()).step_by(stride) {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        let yp = layer.forward(&plus, true).unwrap();
        let (lp, _) = weighted_loss(&yp, &loss_weights);
        let ym = layer.forward(&minus, true).unwrap();
        let (lm, _) = weighted_loss(&ym, &loss_weights);
        let numeric = (lp - lm) / (2.0 * f64::from(eps));
        let got = f64::from(analytic.as_slice()[i]);
        assert!(
            (numeric - got).abs() < tol * (1.0 + numeric.abs()),
            "input grad at {i}: numeric {numeric:.6} vs analytic {got:.6}"
        );
    }
}

/// Checks parameter gradients of `layer` against central differences.
fn check_param_gradients<L: Layer>(layer: &mut L, input: &Tensor, tol: f64) {
    let y = layer.forward(input, true).unwrap();
    let loss_weights = random_tensor(y.shape().to_vec(), 8888);
    let (_, dy) = weighted_loss(&y, &loss_weights);
    for p in layer.params_mut() {
        p.zero_grad();
    }
    layer.forward(input, true).unwrap();
    layer.backward(&dy).unwrap();
    let analytic: Vec<Vec<f32>> = layer
        .params_mut()
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();

    let eps = 1e-3f32;
    let param_count = analytic.len();
    #[allow(clippy::needless_range_loop)] // `pi` also indexes `layer.params_mut()`
    for pi in 0..param_count {
        let len = layer.params_mut()[pi].value.len();
        let stride = (len / 24).max(1);
        for i in (0..len).step_by(stride) {
            let original = layer.params_mut()[pi].value.as_slice()[i];
            layer.params_mut()[pi].value.as_mut_slice()[i] = original + eps;
            let yp = layer.forward(input, true).unwrap();
            let (lp, _) = weighted_loss(&yp, &loss_weights);
            layer.params_mut()[pi].value.as_mut_slice()[i] = original - eps;
            let ym = layer.forward(input, true).unwrap();
            let (lm, _) = weighted_loss(&ym, &loss_weights);
            layer.params_mut()[pi].value.as_mut_slice()[i] = original;
            let numeric = (lp - lm) / (2.0 * f64::from(eps));
            let got = f64::from(analytic[pi][i]);
            assert!(
                (numeric - got).abs() < tol * (1.0 + numeric.abs()),
                "param {pi} grad at {i}: numeric {numeric:.6} vs analytic {got:.6}"
            );
        }
    }
}

#[test]
fn linear_input_gradient_is_correct() {
    let mut fc = Linear::new(6, 4, 3).unwrap();
    let x = random_tensor(vec![3, 6], 1);
    check_input_gradient(&mut fc, &x, 2e-2);
}

#[test]
fn linear_param_gradients_are_correct() {
    let mut fc = Linear::new(6, 4, 3).unwrap();
    let x = random_tensor(vec![3, 6], 2);
    check_param_gradients(&mut fc, &x, 2e-2);
}

#[test]
fn conv_input_gradient_is_correct() {
    let mut conv = Conv2d::new(2, 3, 3, 5).unwrap();
    let x = random_tensor(vec![2, 2, 5, 5], 3);
    check_input_gradient(&mut conv, &x, 2e-2);
}

#[test]
fn conv_param_gradients_are_correct() {
    let mut conv = Conv2d::new(2, 3, 3, 5).unwrap();
    let x = random_tensor(vec![2, 2, 5, 5], 4);
    check_param_gradients(&mut conv, &x, 2e-2);
}

#[test]
fn strided_conv_gradients_are_correct() {
    let mut conv = Conv2d::new(2, 2, 3, 6).unwrap().with_stride(2).unwrap();
    let x = random_tensor(vec![2, 2, 6, 6], 5);
    check_input_gradient(&mut conv, &x, 2e-2);
    check_param_gradients(&mut conv, &x, 2e-2);
}

#[test]
fn relu_input_gradient_is_correct() {
    let mut relu = Relu::new();
    // Keep values away from the kink at 0 for clean finite differences.
    let mut x = random_tensor(vec![2, 8], 6);
    for v in x.as_mut_slice() {
        if v.abs() < 0.05 {
            *v += 0.1;
        }
    }
    check_input_gradient(&mut relu, &x, 2e-2);
}

#[test]
fn maxpool_input_gradient_is_correct() {
    let mut pool = MaxPool2d::new(2).unwrap();
    let x = random_tensor(vec![2, 2, 4, 4], 7);
    check_input_gradient(&mut pool, &x, 2e-2);
}

#[test]
fn batchnorm_input_gradient_is_correct() {
    let mut bn = BatchNorm2d::new(3).unwrap();
    let x = random_tensor(vec![4, 3, 3, 3], 8);
    check_input_gradient(&mut bn, &x, 5e-2);
}

#[test]
fn batchnorm_param_gradients_are_correct() {
    let mut bn = BatchNorm2d::new(3).unwrap();
    let x = random_tensor(vec![4, 3, 3, 3], 9);
    check_param_gradients(&mut bn, &x, 5e-2);
}

#[test]
fn residual_block_input_gradient_is_correct() {
    let mut block = ResidualBlock::new(2, 2, 1, 11).unwrap();
    let x = random_tensor(vec![2, 2, 4, 4], 10);
    check_input_gradient(&mut block, &x, 8e-2);
}

#[test]
fn downsampling_residual_block_gradients_are_correct() {
    let mut block = ResidualBlock::new(2, 4, 2, 12).unwrap();
    let x = random_tensor(vec![2, 2, 6, 6], 11);
    check_input_gradient(&mut block, &x, 8e-2);
}

//! Property tests for the tiled GEMM engine: the packed kernels against
//! the naive reference across odd/prime/tiny shapes, and bitwise thread-
//! count stability of the layers built on top of them.

use proptest::prelude::*;
use safelight_neuro::linalg::reference;
use safelight_neuro::{matmul, matmul_a_bt, matmul_at_b, Conv2d, Layer, Linear, Tensor};

/// The awkward dimensions the tiling must survive: unit, primes straddling
/// the micro-kernel (MR=4, NR=16), and boundary-crossing sizes.
const DIMS: [usize; 6] = [1, 3, 7, 17, 64, 129];

fn deterministic(len: usize, salt: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32).mul_add(0.37, salt)).sin() * 0.5)
        .collect()
}

/// Element-wise comparison with a tolerance scaled to the reduction depth
/// (the tiled engine sums in panel order, the reference row by row).
fn assert_close(tiled: &[f32], reference: &[f32], k: usize, label: &str) {
    let tol = 1e-6 * (k as f32).max(1.0);
    for (i, (a, b)) in tiled.iter().zip(reference).enumerate() {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{label}: element {i} diverged: tiled {a} vs reference {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `C += A·B` agrees with the reference at every dimension triple from
    /// the awkward set.
    #[test]
    fn tiled_matmul_matches_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = deterministic(m * k, salt);
        let b = deterministic(k * n, salt + 1.0);
        let mut c_tiled = deterministic(m * n, salt + 2.0);
        let mut c_ref = c_tiled.clone();
        matmul(&a, &b, &mut c_tiled, m, k, n);
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        assert_close(&c_tiled, &c_ref, k, "matmul");
    }

    /// `C += A·Bᵀ` agrees with the reference.
    #[test]
    fn tiled_a_bt_matches_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = deterministic(m * k, salt);
        let b_t = deterministic(n * k, salt + 1.0);
        let mut c_tiled = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        matmul_a_bt(&a, &b_t, &mut c_tiled, m, k, n);
        reference::matmul_a_bt(&a, &b_t, &mut c_ref, m, k, n);
        assert_close(&c_tiled, &c_ref, k, "matmul_a_bt");
    }

    /// `C += Aᵀ·B` agrees with the reference.
    #[test]
    fn tiled_at_b_matches_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a_t = deterministic(k * m, salt);
        let b = deterministic(k * n, salt + 1.0);
        let mut c_tiled = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        matmul_at_b(&a_t, &b, &mut c_tiled, m, k, n);
        reference::matmul_at_b(&a_t, &b, &mut c_ref, m, k, n);
        assert_close(&c_tiled, &c_ref, k, "matmul_at_b");
    }
}

/// Runs one conv forward+backward at the given thread setting, returning
/// `(output, grad_input, grad_weight, grad_bias)`.
fn conv_pass(threads: usize, batch: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut conv = Conv2d::new(3, 5, 3, 11).unwrap().with_threads(threads);
    let x = Tensor::from_vec(vec![batch, 3, 9, 9], deterministic(batch * 3 * 9 * 9, 0.5)).unwrap();
    let y = conv.forward(&x, true).unwrap();
    let g = Tensor::from_vec(y.shape().to_vec(), deterministic(y.as_slice().len(), 1.5)).unwrap();
    let gx = conv.backward(&g).unwrap();
    let params = conv.params();
    (
        y.as_slice().to_vec(),
        gx.as_slice().to_vec(),
        params[0].grad.as_slice().to_vec(),
        params[1].grad.as_slice().to_vec(),
    )
}

/// Conv forward *and backward* are bitwise identical across thread counts:
/// the fixed-block batch decomposition pins the gradient reduction order.
#[test]
fn conv_backward_is_bit_stable_across_thread_counts() {
    for batch in [1usize, 3, 7, 8] {
        let baseline = conv_pass(1, batch);
        for threads in [2usize, 4] {
            let run = conv_pass(threads, batch);
            assert_eq!(
                baseline.0, run.0,
                "forward diverged (batch {batch}, {threads}t)"
            );
            assert_eq!(
                baseline.1, run.1,
                "grad_input diverged (batch {batch}, {threads}t)"
            );
            assert_eq!(
                baseline.2, run.2,
                "grad_weight diverged (batch {batch}, {threads}t)"
            );
            assert_eq!(
                baseline.3, run.3,
                "grad_bias diverged (batch {batch}, {threads}t)"
            );
        }
    }
}

/// Linear backward reduces the batch inside a single GEMM whose panel
/// order is fixed, so gradients are bitwise reproducible call over call and
/// across pool configurations.
#[test]
fn linear_backward_is_bit_stable_across_repeats() {
    let run = || {
        let mut fc = Linear::new(129, 17, 5).unwrap();
        let x = Tensor::from_vec(vec![33, 129], deterministic(33 * 129, 0.25)).unwrap();
        let y = fc.forward(&x, true).unwrap();
        let g =
            Tensor::from_vec(y.shape().to_vec(), deterministic(y.as_slice().len(), 0.75)).unwrap();
        let gx = fc.backward(&g).unwrap();
        let params = fc.params();
        (
            y.as_slice().to_vec(),
            gx.as_slice().to_vec(),
            params[0].grad.as_slice().to_vec(),
        )
    };
    let first = run();
    for _ in 0..3 {
        let again = run();
        assert_eq!(first.0, again.0);
        assert_eq!(first.1, again.1);
        assert_eq!(first.2, again.2);
    }
}

//! Property tests for the GEMM kernel tiers: the packed kernels against
//! the naive reference across odd/prime/tiny shapes, the explicit SIMD
//! micro-kernel against the tiled engine, the integer datapath against a
//! widened-accumulator reference (exact), the frequency-domain convolution
//! against im2col, and bitwise thread-count stability of the layers built
//! on top of them.

use proptest::prelude::*;
use safelight_neuro::layers::ConvImpl;
use safelight_neuro::linalg::{int, reference};
use safelight_neuro::{
    matmul, matmul_a_bt, matmul_at_b, matmul_with, Conv2d, GemmImpl, Layer, Linear, Tensor,
};

/// The awkward dimensions the tiling must survive: unit, primes straddling
/// the micro-kernel (MR=4, NR=16), and boundary-crossing sizes.
const DIMS: [usize; 6] = [1, 3, 7, 17, 64, 129];

fn deterministic(len: usize, salt: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32).mul_add(0.37, salt)).sin() * 0.5)
        .collect()
}

/// Element-wise comparison with a tolerance scaled to the reduction depth
/// (the tiled engine sums in panel order, the reference row by row).
fn assert_close(tiled: &[f32], reference: &[f32], k: usize, label: &str) {
    let tol = 1e-6 * (k as f32).max(1.0);
    for (i, (a, b)) in tiled.iter().zip(reference).enumerate() {
        assert!(
            (a - b).abs() <= tol * b.abs().max(1.0),
            "{label}: element {i} diverged: tiled {a} vs reference {b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `C += A·B` agrees with the reference at every dimension triple from
    /// the awkward set.
    #[test]
    fn tiled_matmul_matches_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = deterministic(m * k, salt);
        let b = deterministic(k * n, salt + 1.0);
        let mut c_tiled = deterministic(m * n, salt + 2.0);
        let mut c_ref = c_tiled.clone();
        matmul(&a, &b, &mut c_tiled, m, k, n);
        reference::matmul(&a, &b, &mut c_ref, m, k, n);
        assert_close(&c_tiled, &c_ref, k, "matmul");
    }

    /// `C += A·Bᵀ` agrees with the reference.
    #[test]
    fn tiled_a_bt_matches_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a = deterministic(m * k, salt);
        let b_t = deterministic(n * k, salt + 1.0);
        let mut c_tiled = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        matmul_a_bt(&a, &b_t, &mut c_tiled, m, k, n);
        reference::matmul_a_bt(&a, &b_t, &mut c_ref, m, k, n);
        assert_close(&c_tiled, &c_ref, k, "matmul_a_bt");
    }

    /// `C += Aᵀ·B` agrees with the reference.
    #[test]
    fn tiled_at_b_matches_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let a_t = deterministic(k * m, salt);
        let b = deterministic(k * n, salt + 1.0);
        let mut c_tiled = vec![0.0; m * n];
        let mut c_ref = vec![0.0; m * n];
        matmul_at_b(&a_t, &b, &mut c_tiled, m, k, n);
        reference::matmul_at_b(&a_t, &b, &mut c_ref, m, k, n);
        assert_close(&c_tiled, &c_ref, k, "matmul_at_b");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The explicit SIMD micro-kernel tier agrees with the tiled engine at
    /// every dimension triple from the awkward set. (On machines without
    /// AVX2 the SIMD tier is unavailable and the property is vacuous.)
    #[test]
    fn simd_matmul_matches_tiled(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 0.0f32..10.0,
    ) {
        if GemmImpl::Simd.is_available() {
            let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
            let a = deterministic(m * k, salt);
            let b = deterministic(k * n, salt + 1.0);
            let mut c_simd = deterministic(m * n, salt + 2.0);
            let mut c_tiled = c_simd.clone();
            matmul_with(GemmImpl::Simd, &a, &b, &mut c_simd, m, k, n);
            matmul_with(GemmImpl::Tiled, &a, &b, &mut c_tiled, m, k, n);
            assert_close(&c_simd, &c_tiled, k, "simd matmul");
        }
    }

    /// The vectorized integer GEMMs are *exact*: i32 accumulation agrees
    /// bit-for-bit with an i64 widened-accumulator reference at every
    /// awkward shape (the overflow contract k·max|a|·max|b| < 2³¹ holds
    /// for i8 codes at every k in the set, and for the bounded i16 codes
    /// the quantizer emits).
    #[test]
    fn int_gemm_is_exact_vs_widened_reference(
        mi in 0usize..6, ki in 0usize..6, ni in 0usize..6, salt in 1u64..1000,
    ) {
        let (m, k, n) = (DIMS[mi], DIMS[ki], DIMS[ni]);
        let code = |len: usize, s: u64| -> Vec<i64> {
            (0..len)
                .map(|i| ((i as u64).wrapping_mul(2654435761).wrapping_add(s) % 255) as i64 - 127)
                .collect()
        };
        let a = code(m * k, salt);
        let b = code(n * k, salt + 7);

        let a8: Vec<i8> = a.iter().map(|&v| v as i8).collect();
        let b8: Vec<i8> = b.iter().map(|&v| v as i8).collect();
        let mut c8 = vec![0i32; m * n];
        let mut c8_ref = vec![0i64; m * n];
        int::matmul_i8_a_bt(&a8, &b8, &mut c8, m, k, n);
        int::reference::matmul_i8_a_bt(&a8, &b8, &mut c8_ref, m, k, n);
        prop_assert!(
            c8.iter().zip(&c8_ref).all(|(&x, &y)| i64::from(x) == y),
            "i8 GEMM diverged from widened reference at {m}x{k}x{n}"
        );

        // ±3175 keeps the contract at the deepest k in the set:
        // 129 · 3175² ≈ 1.3e9 < 2³¹.
        let a16: Vec<i16> = a.iter().map(|&v| (v * 25) as i16).collect();
        let b16: Vec<i16> = b.iter().map(|&v| (v * 25) as i16).collect();
        let mut c16 = vec![0i32; m * n];
        let mut c16_ref = vec![0i64; m * n];
        int::matmul_i16_a_bt(&a16, &b16, &mut c16, m, k, n);
        int::reference::matmul_i16_a_bt(&a16, &b16, &mut c16_ref, m, k, n);
        prop_assert!(
            c16.iter().zip(&c16_ref).all(|(&x, &y)| i64::from(x) == y),
            "i16 GEMM diverged from widened reference at {m}x{k}x{n}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The frequency-domain convolution agrees with im2col across kernel
    /// sizes, channel counts and image sizes (including ones where the
    /// shape heuristic would never pick FFT on its own).
    #[test]
    fn fft_conv_matches_im2col(
        hwi in 0usize..4,
        ki in 0usize..2,
        ic in 1usize..4,
        oc in 1usize..5,
        batch in 1usize..3,
        salt in 0.0f32..10.0,
    ) {
        let hw = [7usize, 12, 17, 29][hwi];
        let kernel = [3usize, 5][ki];
        let x = Tensor::from_vec(
            vec![batch, ic, hw, hw],
            deterministic(batch * ic * hw * hw, salt),
        )
        .unwrap();
        let mut base = Conv2d::new(ic, oc, kernel, 11)
            .unwrap()
            .with_conv_impl(ConvImpl::Im2col);
        let mut freq = Conv2d::new(ic, oc, kernel, 11)
            .unwrap()
            .with_conv_impl(ConvImpl::Fft);
        let y_base = base.forward(&x, false).unwrap();
        let y_freq = freq.forward(&x, false).unwrap();
        prop_assert_eq!(y_base.shape(), y_freq.shape());
        for (i, (a, b)) in y_base.as_slice().iter().zip(y_freq.as_slice()).enumerate() {
            prop_assert!(
                (a - b).abs() <= 5e-4 * b.abs().max(1.0),
                "fft vs im2col diverged at {} (hw {} k {} ic {}): {} vs {}",
                i, hw, kernel, ic, a, b
            );
        }
    }
}

/// Every available kernel tier is bitwise stable under row decomposition:
/// computing `C` in one call agrees exactly with computing disjoint row
/// blocks in separate calls. The batch-parallel layers split work exactly
/// this way, so this is the GEMM-level form of "thread count cannot change
/// the bits" — per tier, not just for whichever tier is active.
#[test]
fn kernel_tiers_are_bit_stable_under_row_decomposition() {
    let (m, k, n) = (37usize, 129, 65);
    let a = deterministic(m * k, 0.3);
    let b = deterministic(k * n, 1.3);
    for imp in GemmImpl::all() {
        if !imp.is_available() {
            continue;
        }
        let mut whole = vec![0.0f32; m * n];
        matmul_with(imp, &a, &b, &mut whole, m, k, n);
        for blocks in [2usize, 3, 5] {
            let mut split = vec![0.0f32; m * n];
            let rows = m.div_ceil(blocks);
            let mut i0 = 0;
            while i0 < m {
                let i1 = (i0 + rows).min(m);
                matmul_with(
                    imp,
                    &a[i0 * k..i1 * k],
                    &b,
                    &mut split[i0 * n..i1 * n],
                    i1 - i0,
                    k,
                    n,
                );
                i0 = i1;
            }
            assert_eq!(
                whole,
                split,
                "kernel `{}` not bit-stable at {blocks}-way row split",
                imp.name()
            );
        }
    }
}

/// The FFT convolution path is bitwise identical across worker thread
/// counts, same as the im2col path (covered below): the per-image work is
/// independent and the batch decomposition is fixed.
#[test]
fn fft_conv_forward_is_bit_stable_across_thread_counts() {
    let x = Tensor::from_vec(vec![6, 3, 15, 15], deterministic(6 * 3 * 15 * 15, 0.7)).unwrap();
    let run = |threads: usize| {
        let mut conv = Conv2d::new(3, 4, 5, 19)
            .unwrap()
            .with_conv_impl(ConvImpl::Fft)
            .with_threads(threads);
        conv.forward(&x, false).unwrap().as_slice().to_vec()
    };
    let baseline = run(1);
    for threads in [2usize, 4] {
        assert_eq!(baseline, run(threads), "fft forward diverged ({threads}t)");
    }
}

/// Runs one conv forward+backward at the given thread setting, returning
/// `(output, grad_input, grad_weight, grad_bias)`.
fn conv_pass(threads: usize, batch: usize) -> (Vec<f32>, Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut conv = Conv2d::new(3, 5, 3, 11).unwrap().with_threads(threads);
    let x = Tensor::from_vec(vec![batch, 3, 9, 9], deterministic(batch * 3 * 9 * 9, 0.5)).unwrap();
    let y = conv.forward(&x, true).unwrap();
    let g = Tensor::from_vec(y.shape().to_vec(), deterministic(y.as_slice().len(), 1.5)).unwrap();
    let gx = conv.backward(&g).unwrap();
    let params = conv.params();
    (
        y.as_slice().to_vec(),
        gx.as_slice().to_vec(),
        params[0].grad.as_slice().to_vec(),
        params[1].grad.as_slice().to_vec(),
    )
}

/// Conv forward *and backward* are bitwise identical across thread counts:
/// the fixed-block batch decomposition pins the gradient reduction order.
#[test]
fn conv_backward_is_bit_stable_across_thread_counts() {
    for batch in [1usize, 3, 7, 8] {
        let baseline = conv_pass(1, batch);
        for threads in [2usize, 4] {
            let run = conv_pass(threads, batch);
            assert_eq!(
                baseline.0, run.0,
                "forward diverged (batch {batch}, {threads}t)"
            );
            assert_eq!(
                baseline.1, run.1,
                "grad_input diverged (batch {batch}, {threads}t)"
            );
            assert_eq!(
                baseline.2, run.2,
                "grad_weight diverged (batch {batch}, {threads}t)"
            );
            assert_eq!(
                baseline.3, run.3,
                "grad_bias diverged (batch {batch}, {threads}t)"
            );
        }
    }
}

/// Linear backward reduces the batch inside a single GEMM whose panel
/// order is fixed, so gradients are bitwise reproducible call over call and
/// across pool configurations.
#[test]
fn linear_backward_is_bit_stable_across_repeats() {
    let run = || {
        let mut fc = Linear::new(129, 17, 5).unwrap();
        let x = Tensor::from_vec(vec![33, 129], deterministic(33 * 129, 0.25)).unwrap();
        let y = fc.forward(&x, true).unwrap();
        let g =
            Tensor::from_vec(y.shape().to_vec(), deterministic(y.as_slice().len(), 0.75)).unwrap();
        let gx = fc.backward(&g).unwrap();
        let params = fc.params();
        (
            y.as_slice().to_vec(),
            gx.as_slice().to_vec(),
            params[0].grad.as_slice().to_vec(),
        )
    };
    let first = run();
    for _ in 0..3 {
        let again = run();
        assert_eq!(first.0, again.0);
        assert_eq!(first.1, again.1);
        assert_eq!(first.2, again.2);
    }
}

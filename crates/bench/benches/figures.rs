//! End-to-end figure benchmarks: one susceptibility trial (inject +
//! corrupt + evaluate) per model — the unit of work behind Figs. 7-9 —
//! plus the Fig. 6 thermal artifact.

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::attack::{inject, AttackTarget, ScenarioSpec, VectorSpec};
use safelight::experiment::{run_fig6, ExperimentOptions};
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_datasets::{generate, SyntheticSpec};
use safelight_neuro::accuracy;
use safelight_onn::{corrupt_network, WeightMapping};

fn bench_fig7_trial_cnn1(c: &mut Criterion) {
    let kind = ModelKind::Cnn1;
    let data = generate(
        safelight::models::dataset_kind_for(kind),
        &SyntheticSpec {
            train: 64,
            test: 64,
            ..SyntheticSpec::default()
        },
    )
    .unwrap();
    let bundle = build_model(kind, 1).unwrap();
    let config = matched_accelerator(kind).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let scenario = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.05, 0);
    let mut group = c.benchmark_group("fig7_trial");
    group.sample_size(10);
    group.bench_function("cnn1_actuation_5pct_64imgs", |b| {
        b.iter(|| {
            let conditions = inject(&scenario, &config, 7).unwrap();
            let mut attacked =
                corrupt_network(&bundle.network, &mapping, &conditions, &config).unwrap();
            accuracy(&mut attacked, &data.test, 32).unwrap()
        })
    });
    group.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let opts = ExperimentOptions::default();
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("conv_block_heatmap", |b| {
        b.iter(|| run_fig6(&opts).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_fig7_trial_cnn1, bench_fig6);
criterion_main!(benches);

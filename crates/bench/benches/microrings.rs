//! Device-level micro-benchmarks: microring transfer evaluation, imprint
//! inversion and the eq. (2) thermal-shift model.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use safelight_photonics::{thermal_resonance_shift_nm, Microring, SiliconProperties, WdmGrid};

fn bench_through_transmission(c: &mut Criterion) {
    let grid = WdmGrid::c_band(16).unwrap();
    let ring = Microring::for_channel(&grid, 8).unwrap();
    let lambdas: Vec<_> = grid.iter().collect();
    c.bench_function("microring_through_transmission_16ch", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for &l in &lambdas {
                acc += ring.through_transmission(black_box(l));
            }
            acc
        })
    });
}

fn bench_imprint(c: &mut Criterion) {
    let grid = WdmGrid::c_band(8).unwrap();
    let mut ring = Microring::for_channel(&grid, 3).unwrap();
    let (lo, hi) = (ring.min_transmission(), ring.max_transmission());
    c.bench_function("microring_imprint_transmission", |b| {
        let mut t = lo;
        b.iter(|| {
            t += 0.01 * (hi - lo);
            if t > hi {
                t = lo;
            }
            ring.imprint_transmission(black_box(t)).unwrap();
        })
    });
}

fn bench_thermal_shift(c: &mut Criterion) {
    let si = SiliconProperties::default();
    c.bench_function("eq2_thermal_shift", |b| {
        b.iter(|| thermal_resonance_shift_nm(black_box(&si), black_box(1550.0), black_box(20.0)))
    });
}

criterion_group!(
    benches,
    bench_through_transmission,
    bench_imprint,
    bench_thermal_shift
);
criterion_main!(benches);

//! Attack-injection benchmarks: actuation sampling and hotspot thermal
//! solves at the experiment's accelerator shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::attack::{inject, AttackScenario, AttackTarget, AttackVector};
use safelight::models::matched_accelerator;
use safelight::models::ModelKind;

fn bench_actuation(c: &mut Criterion) {
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let scenario = AttackScenario {
        vector: AttackVector::Actuation,
        target: AttackTarget::Both,
        fraction: 0.05,
        trial: 0,
    };
    c.bench_function("inject_actuation_5pct_cnn1", |b| {
        b.iter(|| inject(&scenario, &config, 7).unwrap())
    });
}

fn bench_hotspot(c: &mut Criterion) {
    let config = matched_accelerator(ModelKind::ResNet18s).unwrap();
    let scenario = AttackScenario {
        vector: AttackVector::Hotspot,
        target: AttackTarget::ConvBlock,
        fraction: 0.05,
        trial: 0,
    };
    let mut group = c.benchmark_group("hotspot");
    group.sample_size(10);
    group.bench_function("inject_hotspot_5pct_resnet_conv", |b| {
        b.iter(|| inject(&scenario, &config, 7).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_actuation, bench_hotspot);
criterion_main!(benches);

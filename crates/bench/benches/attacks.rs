//! Attack-injection benchmarks: actuation sampling and hotspot thermal
//! solves at the experiment's accelerator shapes.

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::attack::{inject, AttackTarget, ScenarioSpec, Selection, VectorSpec};
use safelight::models::matched_accelerator;
use safelight::models::ModelKind;

fn bench_actuation(c: &mut Criterion) {
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let scenario = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.05, 0);
    c.bench_function("inject_actuation_5pct_cnn1", |b| {
        b.iter(|| inject(&scenario, &config, 7).unwrap())
    });
}

fn bench_hotspot(c: &mut Criterion) {
    let config = matched_accelerator(ModelKind::ResNet18s).unwrap();
    let scenario = ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::ConvBlock, 0.05, 0);
    let mut group = c.benchmark_group("hotspot");
    group.sample_size(10);
    group.bench_function("inject_hotspot_5pct_resnet_conv", |b| {
        b.iter(|| inject(&scenario, &config, 7).unwrap())
    });
    group.finish();
}

fn bench_new_vectors(c: &mut Criterion) {
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let laser = ScenarioSpec::new(VectorSpec::laser_default(), AttackTarget::Both, 0.05, 0);
    let trim = ScenarioSpec::new(VectorSpec::trim_default(), AttackTarget::Both, 0.05, 0)
        .with_selection(Selection::Clustered);
    let stacked = ScenarioSpec::stacked(
        vec![VectorSpec::Actuation, VectorSpec::Hotspot],
        AttackTarget::ConvBlock,
        0.05,
        0,
    );
    let mut group = c.benchmark_group("new_vectors");
    group.sample_size(10);
    group.bench_function("inject_laser_5pct_cnn1", |b| {
        b.iter(|| inject(&laser, &config, 7).unwrap())
    });
    group.bench_function("inject_trim_clustered_5pct_cnn1", |b| {
        b.iter(|| inject(&trim, &config, 7).unwrap())
    });
    group.bench_function("inject_stacked_5pct_cnn1_conv", |b| {
        b.iter(|| inject(&stacked, &config, 7).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_actuation, bench_hotspot, bench_new_vectors);
criterion_main!(benches);

//! Neural-substrate benchmarks: convolution, dense layers and a full
//! CNN_1 forward pass.

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::models::{build_model, ModelKind};
use safelight_neuro::{Conv2d, Layer, Linear, Tensor};

fn bench_conv_forward(c: &mut Criterion) {
    let mut conv = Conv2d::new(8, 16, 3, 1).unwrap();
    let x = Tensor::zeros(vec![8, 8, 14, 14]);
    c.bench_function("conv2d_forward_8x8x14x14", |b| {
        b.iter(|| conv.forward(&x, false).unwrap())
    });
}

fn bench_conv_backward(c: &mut Criterion) {
    let mut conv = Conv2d::new(8, 16, 3, 1).unwrap();
    let x = Tensor::zeros(vec![8, 8, 14, 14]);
    let y = conv.forward(&x, true).unwrap();
    let g = Tensor::zeros(y.shape().to_vec());
    c.bench_function("conv2d_backward_8x8x14x14", |b| {
        b.iter(|| {
            conv.forward(&x, true).unwrap();
            conv.backward(&g).unwrap()
        })
    });
}

fn bench_linear_forward(c: &mut Criterion) {
    let mut fc = Linear::new(784, 128, 1).unwrap();
    let x = Tensor::zeros(vec![32, 784]);
    c.bench_function("linear_forward_32x784x128", |b| {
        b.iter(|| fc.forward(&x, false).unwrap())
    });
}

fn bench_cnn1_inference(c: &mut Criterion) {
    let mut net = build_model(ModelKind::Cnn1, 1).unwrap().network;
    let x = Tensor::zeros(vec![16, 1, 28, 28]);
    c.bench_function("cnn1_forward_batch16", |b| {
        b.iter(|| net.forward(&x, false).unwrap())
    });
}

criterion_group!(
    benches,
    bench_conv_forward,
    bench_conv_backward,
    bench_linear_forward,
    bench_cnn1_inference
);
criterion_main!(benches);

//! GEMM engine benchmarks: every kernel tier against the straight-ported
//! seed reference, at sizes drawn from the paper's models.
//!
//! * `256x256x256` — the headline square product (acceptance target:
//!   SIMD ≥ 1.5× over the scalar tiled engine, ≥ 3× over the seed
//!   reference);
//! * `8x512x256` — the skinny serving shape (`M` = a small request
//!   batch, `K×N` = an FC layer), where packing overhead dominates;
//! * `conv`-shaped products — CNN_1's and the VGG-variant's im2col
//!   shapes (`M = out_channels`, `K = in_channels·k²`, `N = OH·OW`);
//! * transposed variants — the backward-pass forms `A·Bᵀ` and `Aᵀ·B`;
//! * the integer datapath — i8 codes, i32 accumulation, the quantized
//!   backend's serving kernel;
//! * a whole-network forward — CNN float vs integer datapath, the
//!   "quantized serving is measurably faster" witness.
//!
//! Besides the criterion timings, `emit_baseline` writes a
//! `BENCH_gemm.json` snapshot at the repository root — NOT under
//! `target/`, which `cargo clean` and CI cache eviction silently destroy
//! — so the perf trajectory survives across PRs. The file is a JSON
//! array with one row per `(shape, kernel)` pair: the median per-call
//! latency and the speedup over the seed reference kernel at the same
//! shape (for the network rows, over the float forward). CI regenerates
//! it and gates on regressions (see `.github/workflows/ci.yml`).

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use safelight_neuro::linalg::{int, reference};
use safelight_neuro::{
    matmul, matmul_a_bt, matmul_at_b, matmul_with, Conv2d, Flatten, GemmImpl, IntSpec, Linear,
    MaxPool2d, Network, Relu, Tensor,
};

/// The shapes the baseline artifact tracks: the headline square product,
/// the skinny serving shape and the VGG-variant im2col shape.
const BASELINE_SHAPES: [(&str, usize, usize, usize); 3] = [
    ("256x256x256", 256, 256, 256),
    ("8x512x256", 8, 512, 256),
    ("64x576x1024", 64, 576, 1024),
];

fn fill(len: usize, salt: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32).mul_add(0.37, salt)).sin() * 0.5)
        .collect()
}

fn fill_i8(len: usize, salt: i32) -> Vec<i8> {
    (0..len)
        .map(|i| (((i as i32).wrapping_mul(31) + salt) % 255 - 127) as i8)
        .collect()
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let a = fill(size * size, 1.0);
        let b = fill(size * size, 2.0);
        let mut out = vec![0.0f32; size * size];
        group.bench_with_input(BenchmarkId::new("auto", size), &size, |bench, &s| {
            bench.iter(|| {
                out.fill(0.0);
                matmul(black_box(&a), black_box(&b), &mut out, s, s, s);
            })
        });
        for imp in [GemmImpl::Tiled, GemmImpl::Simd] {
            if !imp.is_available() {
                continue;
            }
            group.bench_with_input(BenchmarkId::new(imp.name(), size), &size, |bench, &s| {
                bench.iter(|| {
                    out.fill(0.0);
                    matmul_with(imp, black_box(&a), black_box(&b), &mut out, s, s, s);
                })
            });
        }
        group.bench_with_input(BenchmarkId::new("reference", size), &size, |bench, &s| {
            bench.iter(|| {
                out.fill(0.0);
                reference::matmul(black_box(&a), black_box(&b), &mut out, s, s, s);
            })
        });
    }
    group.finish();
}

fn bench_conv_shapes(c: &mut Criterion) {
    // (label, M = C_out, K = C_in·k·k, N = OH·OW) from the paper's models,
    // plus the skinny serving shape (M = request batch).
    let shapes = [
        ("cnn1_conv2_32x288x196", 32usize, 288usize, 196usize),
        ("vgg_conv_64x576x1024", 64, 576, 1024),
        ("serve_fc_8x512x256", 8, 512, 256),
    ];
    let mut group = c.benchmark_group("gemm_conv_shape");
    group.sample_size(20);
    for (label, m, k, n) in shapes {
        let a = fill(m * k, 1.0);
        let b = fill(k * n, 2.0);
        let mut out = vec![0.0f32; m * n];
        for imp in [GemmImpl::Tiled, GemmImpl::Simd] {
            if !imp.is_available() {
                continue;
            }
            group.bench_function(BenchmarkId::new(imp.name(), label), |bench| {
                bench.iter(|| {
                    out.fill(0.0);
                    matmul_with(imp, black_box(&a), black_box(&b), &mut out, m, k, n);
                })
            });
        }
        group.bench_function(BenchmarkId::new("reference", label), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                reference::matmul(black_box(&a), black_box(&b), &mut out, m, k, n);
            })
        });
    }
    group.finish();
}

fn bench_int_gemm(c: &mut Criterion) {
    // The quantized backend's serving kernel: i8 codes, i32 accumulation,
    // A·Bᵀ layout (B stored row-major as [n][k]).
    let mut group = c.benchmark_group("gemm_int8");
    group.sample_size(20);
    for (label, m, k, n) in [
        ("256x256x256", 256usize, 256usize, 256usize),
        ("serve_fc_8x512x256", 8, 512, 256),
    ] {
        let a = fill_i8(m * k, 1);
        let b = fill_i8(n * k, 2);
        let mut acc = vec![0i32; m * n];
        group.bench_function(BenchmarkId::new("int8", label), |bench| {
            bench.iter(|| {
                int::matmul_i8_a_bt(black_box(&a), black_box(&b), &mut acc, m, k, n);
            })
        });
    }
    group.finish();
}

fn bench_transposed_variants(c: &mut Criterion) {
    // Backward-pass shapes: dW = dYᵀ·X (Aᵀ·B) and y = x·Wᵀ (A·Bᵀ).
    let (m, k, n) = (128usize, 256usize, 128usize);
    let a = fill(m * k, 1.0);
    let a_t = fill(k * m, 1.0);
    let b = fill(k * n, 2.0);
    let b_t = fill(n * k, 2.0);
    let mut out = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("gemm_transposed");
    group.sample_size(20);
    group.bench_function("auto/a_bt_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            matmul_a_bt(black_box(&a), black_box(&b_t), &mut out, m, k, n);
        })
    });
    group.bench_function("reference/a_bt_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            reference::matmul_a_bt(black_box(&a), black_box(&b_t), &mut out, m, k, n);
        })
    });
    group.bench_function("auto/at_b_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            matmul_at_b(black_box(&a_t), black_box(&b), &mut out, m, k, n);
        })
    });
    group.bench_function("reference/at_b_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            reference::matmul_at_b(black_box(&a_t), black_box(&b), &mut out, m, k, n);
        })
    });
    group.finish();
}

/// One warm-up call, then the median of 7 timed calls of `f`.
fn median_seconds(mut f: impl FnMut()) -> f64 {
    f();
    let mut samples: Vec<f64> = (0..7)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
    samples[samples.len() / 2]
}

/// The paper's CNN_1 stack (2 CONV + 3 FC on 1×28×28) in the serving
/// configuration: the whole-network witness for the integer datapath,
/// i.e. exactly the shape the quantized backend serves.
fn serving_net() -> Network {
    let mut net = Network::new();
    net.push(Conv2d::new(1, 8, 5, 11).unwrap());
    net.push(Relu::new());
    net.push(MaxPool2d::new(2).unwrap());
    net.push(Conv2d::new(8, 16, 3, 12).unwrap());
    net.push(Relu::new());
    net.push(MaxPool2d::new(2).unwrap());
    net.push(Flatten::new());
    net.push(Linear::new(16 * 7 * 7, 48, 13).unwrap());
    net.push(Relu::new());
    net.push(Linear::new(48, 24, 14).unwrap());
    net.push(Relu::new());
    net.push(Linear::new(24, 10, 15).unwrap());
    net
}

/// Writes `BENCH_gemm.json` at the repository root: a JSON array with one
/// row per `(shape, kernel)` — median per-call latency in seconds and the
/// speedup over the seed reference kernel at the same shape. Two extra
/// rows time a whole CNN forward through the float and integer datapaths
/// (speedup there is over the float forward).
fn emit_baseline(c: &mut Criterion) {
    let mut rows: Vec<String> = Vec::new();
    let mut push_row = |shape: &str, kernel: &str, seconds: f64, base_seconds: f64| {
        let speedup = base_seconds / seconds.max(1e-12);
        rows.push(format!(
            "{{\"shape\":\"{shape}\",\"kernel\":\"{kernel}\",\
             \"seconds\":{seconds},\"speedup\":{speedup}}}"
        ));
    };

    for (shape, m, k, n) in BASELINE_SHAPES {
        let a = fill(m * k, 1.0);
        let b = fill(k * n, 2.0);
        let mut out = vec![0.0f32; m * n];
        let reference_seconds = median_seconds(|| {
            out.fill(0.0);
            reference::matmul(&a, &b, &mut out, m, k, n);
        });
        push_row(shape, "reference", reference_seconds, reference_seconds);
        for imp in [GemmImpl::Tiled, GemmImpl::Simd] {
            if !imp.is_available() {
                continue;
            }
            let seconds = median_seconds(|| {
                out.fill(0.0);
                matmul_with(imp, &a, &b, &mut out, m, k, n);
            });
            push_row(shape, imp.name(), seconds, reference_seconds);
        }
        // The integer serving kernel at the same shape: i8 codes, i32
        // accumulation, A·Bᵀ layout. Same madd count as the float GEMM,
        // so the reference-relative speedup is comparable.
        let ai = fill_i8(m * k, 1);
        let bi = fill_i8(n * k, 2);
        let mut acc = vec![0i32; m * n];
        let int_seconds = median_seconds(|| {
            int::matmul_i8_a_bt(&ai, &bi, &mut acc, m, k, n);
        });
        push_row(shape, "int8", int_seconds, reference_seconds);
    }

    // Whole-network serving forward, float vs integer datapath: the
    // end-to-end witness that the quantized backend's serving path is
    // faster, not just its inner kernel.
    let shape = "cnn1_forward_32x1x28x28";
    let x = Tensor::from_vec(vec![32, 1, 28, 28], fill(32 * 784, 3.0)).unwrap();
    let mut net = serving_net();
    let float_seconds = median_seconds(|| {
        black_box(net.forward(&x, false).unwrap());
    });
    push_row(shape, "float", float_seconds, float_seconds);
    net.set_int_mode(Some(IntSpec {
        act_steps: 255,
        weight_steps: 255,
    }));
    let int_seconds = median_seconds(|| {
        black_box(net.forward(&x, false).unwrap());
    });
    push_row(shape, "int8", int_seconds, float_seconds);

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    // Benches run with the package directory as cwd; anchor the artifact
    // at the repository root, where `cargo clean` cannot eat it.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_gemm.json");
    std::fs::write(&path, &json).ok();
    println!("BENCH_gemm baseline rows → {}", path.display());
    for row in &rows {
        println!("  {row}");
    }
    // Keep the criterion harness happy with a trivial measured body.
    c.bench_function("gemm_baseline_emitted", |bench| {
        bench.iter(|| black_box(rows.len()))
    });
}

criterion_group!(
    benches,
    bench_square,
    bench_conv_shapes,
    bench_int_gemm,
    bench_transposed_variants,
    emit_baseline
);
criterion_main!(benches);

//! GEMM engine benchmarks: the tiled multi-threaded kernels against the
//! straight-ported seed reference, at sizes drawn from the paper's models.
//!
//! * `256x256x256` — the headline square product (acceptance target: ≥2×
//!   over the seed kernels);
//! * `conv`-shaped products — CNN_1's and the VGG-variant's im2col shapes
//!   (`M = out_channels`, `K = in_channels·k²`, `N = OH·OW`);
//! * transposed variants — the backward-pass forms `A·Bᵀ` and `Aᵀ·B`.
//!
//! Besides the criterion timings, `emit_baseline` writes a
//! `BENCH_gemm.json` snapshot (median 256³ latency for the tiled and
//! reference kernels plus the implied speedup) at the repository root —
//! NOT under `target/`, which `cargo clean` and CI cache eviction
//! silently destroy — so the perf trajectory survives across PRs.

use std::time::Instant;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use safelight_neuro::linalg::reference;
use safelight_neuro::{matmul, matmul_a_bt, matmul_at_b};

fn fill(len: usize, salt: f32) -> Vec<f32> {
    (0..len)
        .map(|i| ((i as f32).mul_add(0.37, salt)).sin() * 0.5)
        .collect()
}

fn bench_square(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_square");
    group.sample_size(20);
    for size in [64usize, 128, 256] {
        let a = fill(size * size, 1.0);
        let b = fill(size * size, 2.0);
        let mut out = vec![0.0f32; size * size];
        group.bench_with_input(BenchmarkId::new("tiled", size), &size, |bench, &s| {
            bench.iter(|| {
                out.fill(0.0);
                matmul(black_box(&a), black_box(&b), &mut out, s, s, s);
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", size), &size, |bench, &s| {
            bench.iter(|| {
                out.fill(0.0);
                reference::matmul(black_box(&a), black_box(&b), &mut out, s, s, s);
            })
        });
    }
    group.finish();
}

fn bench_conv_shapes(c: &mut Criterion) {
    // (label, M = C_out, K = C_in·k·k, N = OH·OW) from the paper's models.
    let shapes = [
        ("cnn1_conv2_32x288x196", 32usize, 288usize, 196usize),
        ("vgg_conv_64x576x1024", 64, 576, 1024),
    ];
    let mut group = c.benchmark_group("gemm_conv_shape");
    group.sample_size(20);
    for (label, m, k, n) in shapes {
        let a = fill(m * k, 1.0);
        let b = fill(k * n, 2.0);
        let mut out = vec![0.0f32; m * n];
        group.bench_function(BenchmarkId::new("tiled", label), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                matmul(black_box(&a), black_box(&b), &mut out, m, k, n);
            })
        });
        group.bench_function(BenchmarkId::new("reference", label), |bench| {
            bench.iter(|| {
                out.fill(0.0);
                reference::matmul(black_box(&a), black_box(&b), &mut out, m, k, n);
            })
        });
    }
    group.finish();
}

fn bench_transposed_variants(c: &mut Criterion) {
    // Backward-pass shapes: dW = dYᵀ·X (Aᵀ·B) and y = x·Wᵀ (A·Bᵀ).
    let (m, k, n) = (128usize, 256usize, 128usize);
    let a = fill(m * k, 1.0);
    let a_t = fill(k * m, 1.0);
    let b = fill(k * n, 2.0);
    let b_t = fill(n * k, 2.0);
    let mut out = vec![0.0f32; m * n];
    let mut group = c.benchmark_group("gemm_transposed");
    group.sample_size(20);
    group.bench_function("tiled/a_bt_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            matmul_a_bt(black_box(&a), black_box(&b_t), &mut out, m, k, n);
        })
    });
    group.bench_function("reference/a_bt_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            reference::matmul_a_bt(black_box(&a), black_box(&b_t), &mut out, m, k, n);
        })
    });
    group.bench_function("tiled/at_b_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            matmul_at_b(black_box(&a_t), black_box(&b), &mut out, m, k, n);
        })
    });
    group.bench_function("reference/at_b_128x256x128", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            reference::matmul_at_b(black_box(&a_t), black_box(&b), &mut out, m, k, n);
        })
    });
    group.finish();
}

/// Writes `BENCH_gemm.json` at the repository root: the median 256³
/// per-call latency of the tiled engine and the seed reference kernels,
/// plus the implied speedup.
fn emit_baseline(c: &mut Criterion) {
    let size = 256usize;
    let a = fill(size * size, 1.0);
    let b = fill(size * size, 2.0);
    let mut out = vec![0.0f32; size * size];
    type Kernel<'a> = &'a dyn Fn(&[f32], &[f32], &mut [f32]);
    let mut time_kernel = |f: Kernel<'_>| -> f64 {
        // One warm-up, then the median of 7 timed calls.
        out.fill(0.0);
        f(&a, &b, &mut out);
        let mut samples: Vec<f64> = (0..7)
            .map(|_| {
                out.fill(0.0);
                let start = Instant::now();
                f(&a, &b, &mut out);
                start.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|x, y| x.partial_cmp(y).unwrap());
        samples[samples.len() / 2]
    };
    let tiled = time_kernel(&|a, b, out| matmul(a, b, out, size, size, size));
    let reference = time_kernel(&|a, b, out| reference::matmul(a, b, out, size, size, size));
    let speedup = reference / tiled.max(1e-12);
    let json = format!(
        "{{\"shape\":\"256x256x256\",\
         \"tiled_seconds\":{tiled},\
         \"reference_seconds\":{reference},\
         \"speedup\":{speedup}}}\n"
    );
    // Benches run with the package directory as cwd; anchor the artifact
    // at the repository root, where `cargo clean` cannot eat it.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_gemm.json");
    std::fs::write(&path, &json).ok();
    println!(
        "BENCH_gemm baseline: tiled {:.3} ms, reference {:.3} ms ({speedup:.2}x) → {}",
        tiled * 1e3,
        reference * 1e3,
        path.display()
    );
    // Keep the criterion harness happy with a trivial measured body.
    c.bench_function("gemm_baseline_emitted", |bench| bench.iter(|| speedup));
}

criterion_group!(
    benches,
    bench_square,
    bench_conv_shapes,
    bench_transposed_variants,
    emit_baseline
);
criterion_main!(benches);

//! Serving-path benchmarks: steady-state micro-batch latency with and
//! without inline detection (the `< 10 %` overhead bar of the serving
//! acceptance criteria), the alarm path end to end — compromise → alarm
//! → quarantine/remap → executor re-derivation → detector re-baseline —
//! and the fault path: member crash → restart window → version-stamped
//! cache recovery → detector re-baseline → rejoin.
//!
//! Besides the criterion timings, `emit_baseline` writes a
//! `BENCH_serve.json` snapshot (steady-state batch latency, detection
//! overhead fraction, the observability-plane instrumentation overhead
//! with a `ServeObserver` attached and profiling on, the SLO
//! alert-evaluation path cost, alarm-path and fault-path latency, and
//! the open-loop throughput-vs-p99 saturation sweep) at the repository
//! root
//! — NOT under `target/`, which `cargo clean` and CI cache eviction
//! silently destroy — so later PRs can diff serving-path regressions
//! without parsing bench logs. The open-loop curve is measured in
//! *virtual* ticks, so it is deterministic in the seed and CI-gateable
//! without machine noise.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::detect::{default_detectors, Detector};
use safelight::fault::FaultPlan;
use safelight::models::{build_model, dataset_kind_for, matched_accelerator, ModelKind};
use safelight_datasets::SyntheticSpec;
use safelight_neuro::Dataset;
use safelight_obs::{set_profile_enabled, MetricsRegistry, SloSpec};
use safelight_onn::{
    AcceleratorConfig, AnalyticBackend, BlockKind, ConditionMap, MrCondition, SentinelPlan,
    TapConfig, TelemetryProbe, WeightMapping,
};
use safelight_serve::eval::{operating_thresholds, run_rate_sweep, ServingOptions};
use safelight_serve::report::rate_sweep_json;
use safelight_serve::{
    Compromise, Fleet, FleetMember, MemberFault, PolicyConfig, Request, ServeObserver,
};

struct Setup {
    network: safelight_neuro::Network,
    mapping: WeightMapping,
    config: AcceleratorConfig,
    suite: Vec<Box<dyn safelight::detect::Detector>>,
    guard: safelight::detect::GuardBandDetector,
    thresholds: Vec<f64>,
    requests: Vec<Request>,
    data: safelight_datasets::SplitDataset,
}

fn setup() -> Setup {
    let bundle = build_model(ModelKind::Cnn1, 7).unwrap();
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let sentinels = SentinelPlan::new(&mapping, &config, 32, 0.7);
    let probe = TelemetryProbe::new(
        &bundle.network,
        &mapping,
        &ConditionMap::new(),
        &config,
        &sentinels,
        TapConfig::default(),
    )
    .unwrap();
    let frames: Vec<_> = (0..32).map(|b| probe.frame(b, 0xBE7C)).collect();
    let mut suite = default_detectors();
    for d in &mut suite {
        d.calibrate(&frames).unwrap();
    }
    let mut guard = safelight::detect::GuardBandDetector::default();
    guard.calibrate(&frames).unwrap();
    let thresholds = operating_thresholds(&probe, &mut suite, 16, 24, 0.05, 0xBE7C);
    let data = safelight_datasets::generate(
        dataset_kind_for(ModelKind::Cnn1),
        &SyntheticSpec {
            train: 16,
            test: 64,
            ..SyntheticSpec::default()
        },
    )
    .unwrap();
    let requests: Vec<Request> = (0..128)
        .map(|i| {
            let (input, _) = data.test.item(i % data.test.len()).unwrap();
            Request {
                id: i as u64,
                input,
                arrived_at: 0.0,
            }
        })
        .collect();
    Setup {
        network: bundle.network,
        mapping,
        config,
        suite,
        guard,
        thresholds,
        requests,
        data,
    }
}

fn make_fleet(s: &Setup, size: usize, policy: PolicyConfig) -> Fleet {
    let members = (0..size)
        .map(|id| {
            FleetMember::new(
                id,
                &s.network,
                s.mapping.clone(),
                Box::new(AnalyticBackend::new(&s.config)),
                TapConfig::default(),
                32,
                0.7,
                s.suite.iter().map(|d| d.clone_box()).collect(),
                s.guard.clone(),
            )
            .unwrap()
        })
        .collect();
    Fleet::new(members, policy).unwrap()
}

/// Steady-state serving: 8 micro-batches of 16 requests per iteration,
/// with inline detection scoring every batch.
fn bench_steady_state(c: &mut Criterion) {
    let s = setup();
    // Baseline policy: inline detection scores every batch (the cost we
    // are measuring) but never responds — a mid-bench false alarm must
    // not remap/recalibrate/fail over the fleet being timed.
    let mut with_detection = make_fleet(&s, 2, PolicyConfig::baseline(s.thresholds.clone()));
    let mut without = make_fleet(&s, 2, PolicyConfig::without_detection());
    c.bench_function("serve_8x16_with_detection", |b| {
        b.iter(|| {
            with_detection
                .serve_stream(&s.requests, 16, None, 0x5EED, 2)
                .unwrap()
        })
    });
    c.bench_function("serve_8x16_no_detection", |b| {
        b.iter(|| {
            without
                .serve_stream(&s.requests, 16, None, 0x5EED, 2)
                .unwrap()
        })
    });
}

/// The alarm path end to end: fresh fleet, compromise at batch 0, serve
/// until the policy has detected, quarantined/remapped (or failed over)
/// and re-baselined.
fn bench_alarm_path(c: &mut Criterion) {
    let s = setup();
    // A clustered compromise of two CONV banks: localizable, remappable.
    let mut attack = ConditionMap::new();
    let per_bank = s.config.block(BlockKind::Conv).mrs_per_bank() as u64;
    for ring in 0..2 * per_bank {
        attack.set(BlockKind::Conv, ring, MrCondition::Parked);
    }
    c.bench_function("alarm_path_compromise_to_recovery", |b| {
        b.iter(|| {
            let mut fleet = make_fleet(&s, 2, PolicyConfig::new(s.thresholds.clone()));
            fleet
                .serve_stream(
                    &s.requests[..64],
                    16,
                    Some(Compromise {
                        member: 0,
                        onset_batch: 0,
                        conditions: &attack,
                    }),
                    0x5EED,
                    2,
                )
                .unwrap()
        })
    });
}

/// The fault path end to end: fresh fleet, member crash at batch 0,
/// serve until the member has waited out its restart window, recovered
/// from the version-stamped model cache, re-baselined its detectors and
/// rejoined the routing set.
fn bench_fault_path(c: &mut Criterion) {
    let s = setup();
    let plan = FaultPlan {
        onset_batch: 0,
        sensors: Vec::new(),
        crash: true,
    };
    c.bench_function("fault_path_crash_to_cache_recovery", |b| {
        b.iter(|| {
            let mut fleet = make_fleet(&s, 2, PolicyConfig::new(s.thresholds.clone()));
            fleet
                .serve_stream_with_faults(
                    &s.requests[..64],
                    16,
                    None,
                    Some(MemberFault {
                        member: 0,
                        plan: &plan,
                    }),
                    0x5EED,
                    2,
                )
                .unwrap()
        })
    });
}

/// Writes `BENCH_serve.json` at the repository root: medians of the
/// steady-state batch latency with/without detection, the implied
/// inline-detection overhead fraction, and one alarm-path and one
/// fault-path end-to-end latency sample.
fn emit_baseline(c: &mut Criterion) {
    let s = setup();
    let batches = 8usize;
    let time_stream = |fleet: &mut Fleet| -> f64 {
        // One warm-up pass, then the median of 5 timed passes.
        fleet
            .serve_stream(&s.requests, 16, None, 0x5EED, 2)
            .unwrap();
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                fleet
                    .serve_stream(&s.requests, 16, None, 0x5EED, 2)
                    .unwrap();
                start.elapsed().as_secs_f64() / batches as f64
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    // Same discipline as bench_steady_state: score inline, never respond,
    // so the overhead fraction compares identical workloads.
    let mut with_detection = make_fleet(&s, 2, PolicyConfig::baseline(s.thresholds.clone()));
    let mut without = make_fleet(&s, 2, PolicyConfig::without_detection());
    let batch_with = time_stream(&mut with_detection);
    let batch_without = time_stream(&mut without);
    let overhead = (batch_with - batch_without).max(0.0) / batch_without;

    // Observability-plane overhead: the same detection workload with a
    // ServeObserver attached (structured trace + metrics on every tick)
    // and the profiling hooks enabled — the ≤ 3 % bar CI gates on.
    let mut instrumented = make_fleet(&s, 2, PolicyConfig::baseline(s.thresholds.clone()));
    instrumented.set_observer(Some(std::sync::Arc::new(ServeObserver::default())));
    set_profile_enabled(true);
    let batch_instrumented = time_stream(&mut instrumented);
    set_profile_enabled(false);
    let instrumentation_overhead = (batch_instrumented - batch_with).max(0.0) / batch_with;

    // Alert-evaluation path: the same instrumented workload with an SLO
    // attached; `alert_path_seconds` times the end-of-stream rule
    // evaluation itself (snapshot + threshold + burn-rate rules) and the
    // implied per-stream overhead fraction is the ≤ 3 % bar CI gates on.
    let slo = SloSpec::default();
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    let observer = std::sync::Arc::new(ServeObserver::with_scope_slo(
        registry,
        &[("bench", "alert")],
        Some(&slo),
    ));
    let mut judged = make_fleet(&s, 2, PolicyConfig::baseline(s.thresholds.clone()));
    judged.set_observer(Some(observer.clone()));
    judged
        .serve_stream(&s.requests, 16, None, 0x5EED, 2)
        .unwrap();
    let alert_path = {
        let mut samples: Vec<f64> = (0..5)
            .map(|_| {
                let start = Instant::now();
                let _ = observer.evaluate_alerts();
                start.elapsed().as_secs_f64()
            })
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    let alert_overhead = alert_path / (batch_with * batches as f64);

    let mut attack = ConditionMap::new();
    let per_bank = s.config.block(BlockKind::Conv).mrs_per_bank() as u64;
    for ring in 0..2 * per_bank {
        attack.set(BlockKind::Conv, ring, MrCondition::Parked);
    }
    let alarm_path = {
        let mut fleet = make_fleet(&s, 2, PolicyConfig::new(s.thresholds.clone()));
        let start = Instant::now();
        fleet
            .serve_stream(
                &s.requests[..64],
                16,
                Some(Compromise {
                    member: 0,
                    onset_batch: 0,
                    conditions: &attack,
                }),
                0x5EED,
                2,
            )
            .unwrap();
        start.elapsed().as_secs_f64()
    };

    let fault_path = {
        let plan = FaultPlan {
            onset_batch: 0,
            sensors: Vec::new(),
            crash: true,
        };
        let mut fleet = make_fleet(&s, 2, PolicyConfig::new(s.thresholds.clone()));
        let start = Instant::now();
        fleet
            .serve_stream_with_faults(
                &s.requests[..64],
                16,
                None,
                Some(MemberFault {
                    member: 0,
                    plan: &plan,
                }),
                0x5EED,
                2,
            )
            .unwrap();
        start.elapsed().as_secs_f64()
    };

    // Open-loop saturation sweep in virtual time: a 2-member fleet of
    // 16-request micro-batches drains at most 32 requests per tick, so
    // sweep rates bracketing that capacity. The queue is pinned to one
    // tick of drain (32) rather than the generous default (128) so a
    // supra-capacity rate actually sheds within the 192-request stream
    // instead of parking its whole backlog in the queue. Virtual-tick
    // percentiles are deterministic in the seed — this part of the
    // snapshot carries no machine noise and is regression-gated exactly
    // in CI.
    let sweep_rates = [8.0, 16.0, 24.0, 40.0];
    let sweep = run_rate_sweep(
        &s.network,
        &s.mapping,
        &AnalyticBackend::new(&s.config),
        &s.data.test,
        &s.suite,
        &ServingOptions {
            batches: 12,
            queue_capacity: 32,
            ..ServingOptions::default()
        },
        &sweep_rates,
        0x5EED,
        2,
    )
    .unwrap();

    let json = format!(
        "{{\"model\":\"cnn1\",\"batch_size\":16,\"fleet\":2,\
         \"steady_batch_seconds_with_detection\":{batch_with},\
         \"steady_batch_seconds_no_detection\":{batch_without},\
         \"inline_detection_overhead_fraction\":{overhead},\
         \"steady_batch_seconds_instrumented\":{batch_instrumented},\
         \"instrumentation_overhead_fraction\":{instrumentation_overhead},\
         \"alert_path_seconds\":{alert_path},\
         \"alert_evaluation_overhead_fraction\":{alert_overhead},\
         \"alarm_path_seconds\":{alarm_path},\
         \"fault_path_seconds\":{fault_path},\
         \"open_loop\":{}}}\n",
        rate_sweep_json(&sweep)
    );
    // Benches run with the package directory as cwd; anchor the artifact
    // at the repository root, where `cargo clean` cannot eat it.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serve.json");
    std::fs::write(&out, &json).ok();
    println!(
        "BENCH_serve baseline: batch {:.3} ms w/ detection, {:.3} ms without \
         (overhead {:.1} %), instrumented {:.3} ms (obs overhead {:.1} %), \
         alert evaluation {:.3} ms ({:.2} % of stream), \
         alarm path {:.1} ms, fault path {:.1} ms, \
         open-loop saturation at rate {} → {}",
        batch_with * 1e3,
        batch_without * 1e3,
        overhead * 100.0,
        batch_instrumented * 1e3,
        instrumentation_overhead * 100.0,
        alert_path * 1e3,
        alert_overhead * 100.0,
        alarm_path * 1e3,
        fault_path * 1e3,
        sweep.saturation_rate,
        out.display()
    );
    // Keep the criterion harness happy with a trivial measured body.
    c.bench_function("serve_baseline_emitted", |b| b.iter(|| overhead));
}

criterion_group!(
    benches,
    bench_steady_state,
    bench_alarm_path,
    bench_fault_path,
    emit_baseline
);
criterion_main!(benches);

//! Attack-sweep throughput: a full `run_susceptibility` over the §IV
//! scenario grid, serial versus fanned out across the worker pool.
//!
//! For the seed-kernel baseline quoted in `docs/perf.md`, run the same
//! bench with `SAFELIGHT_GEMM_IMPL=reference`, which routes every matmul
//! through the straight-ported seed loops.

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::attack::{AttackTarget, ScenarioSpec, Selection, VectorSpec};
use safelight::eval::run_susceptibility;
use safelight::models::{build_model, ModelKind};
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::parallel::pool_size;
use safelight_neuro::{Trainer, TrainerConfig};
use safelight_onn::{AcceleratorConfig, AnalyticBackend, WeightMapping};

fn scenario_grid() -> Vec<ScenarioSpec> {
    let mut scenarios = Vec::new();
    for vector in VectorSpec::paper_pair() {
        for fraction in [0.05, 0.10] {
            for trial in 0..3 {
                scenarios.push(ScenarioSpec::new(
                    vector,
                    AttackTarget::Both,
                    fraction,
                    trial,
                ));
            }
        }
    }
    scenarios
}

/// The enlarged grid: paper pair + the new vectors + a stacked scenario,
/// across all three selection strategies (12 + 9 = 21 scenarios).
fn extended_grid() -> Vec<ScenarioSpec> {
    let mut scenarios = scenario_grid();
    for selection in Selection::all() {
        for (stack, trial) in [
            (vec![VectorSpec::laser_default()], 0),
            (vec![VectorSpec::trim_default()], 1),
            (safelight::attack::stacked_pair(), 2),
        ] {
            scenarios.push(
                ScenarioSpec::stacked(stack, AttackTarget::Both, 0.05, trial)
                    .with_selection(selection),
            );
        }
    }
    scenarios
}

fn bench_susceptibility_sweep(c: &mut Criterion) {
    let data = digits(&SyntheticSpec {
        train: 120,
        test: 96,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    let cfg = TrainerConfig {
        epochs: 2,
        batch_size: 20,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let backend = AnalyticBackend::new(&config);
    let scenarios = scenario_grid();

    let mut group = c.benchmark_group("susceptibility_sweep");
    group.sample_size(10);
    group.bench_function("cnn1_12_scenarios_serial", |b| {
        b.iter(|| {
            run_susceptibility(&network, &mapping, &backend, &data.test, &scenarios, 7, 1).unwrap()
        })
    });
    group.bench_function(format!("cnn1_12_scenarios_pool{}", pool_size()), |b| {
        b.iter(|| {
            run_susceptibility(
                &network,
                &mapping,
                &backend,
                &data.test,
                &scenarios,
                7,
                pool_size(),
            )
            .unwrap()
        })
    });
    let extended = extended_grid();
    group.bench_function(
        format!(
            "cnn1_{}_extended_scenarios_pool{}",
            extended.len(),
            pool_size()
        ),
        |b| {
            b.iter(|| {
                run_susceptibility(
                    &network,
                    &mapping,
                    &backend,
                    &data.test,
                    &extended,
                    7,
                    pool_size(),
                )
                .unwrap()
            })
        },
    );
    group.finish();
}

criterion_group!(benches, bench_susceptibility_sweep);
criterion_main!(benches);

//! Thermal-solver benchmarks: the HotSpot-substitute's steady-state solve
//! at the block sizes the hotspot attacks use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use safelight_thermal::{Floorplan, ThermalConfig, ThermalGrid};

fn bench_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_solve");
    group.sample_size(10);
    for size in [16usize, 32, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &size| {
            let mut grid = ThermalGrid::new(size, size, ThermalConfig::default()).unwrap();
            grid.add_power(size / 2, size / 2, 0.02).unwrap();
            b.iter(|| grid.solve().unwrap());
        });
    }
    group.finish();
}

fn bench_bank_attack_solve(c: &mut Criterion) {
    // The Fig. 6 configuration: a floorplan of banks with two heated.
    let plan = Floorplan::bank_grid(5, 5, 8, 8, 2).unwrap();
    let mut grid = ThermalGrid::new(
        plan.grid_width(),
        plan.grid_height(),
        ThermalConfig::default(),
    )
    .unwrap();
    grid.add_power_region(plan.bank(6).unwrap().rect, 0.06)
        .unwrap();
    grid.add_power_region(plan.bank(18).unwrap().rect, 0.06)
        .unwrap();
    let mut group = c.benchmark_group("thermal_bank_attack");
    group.sample_size(10);
    group.bench_function("5x5_banks_two_attacked", |b| {
        b.iter(|| grid.solve().unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_solve, bench_bank_attack_solve);
criterion_main!(benches);

//! Detection hot-path benchmarks: telemetry-probe construction, per-frame
//! emission, and the calibrated detector suite scoring a frame stream —
//! the inner loop every ROC point of `eval::detection` is built from.

use criterion::{criterion_group, criterion_main, Criterion};
use safelight::attack::{inject, AttackTarget, ScenarioSpec, VectorSpec};
use safelight::detect::default_detectors;
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_onn::{ConditionMap, SentinelPlan, TapConfig, TelemetryFrame, TelemetryProbe};

fn setup() -> (
    safelight_neuro::Network,
    safelight_onn::WeightMapping,
    safelight_onn::AcceleratorConfig,
    SentinelPlan,
) {
    let bundle = build_model(ModelKind::Cnn1, 7).unwrap();
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mapping = safelight_onn::WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let sentinels = SentinelPlan::new(&mapping, &config, 32, 0.7);
    (bundle.network, mapping, config, sentinels)
}

fn bench_probe_construction(c: &mut Criterion) {
    let (network, mapping, config, sentinels) = setup();
    let attacked = inject(
        &ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0),
        &config,
        7,
    )
    .unwrap();
    c.bench_function("telemetry_probe_new_cnn1_10pct", |b| {
        b.iter(|| {
            TelemetryProbe::new(
                &network,
                &mapping,
                &attacked,
                &config,
                &sentinels,
                TapConfig::default(),
            )
            .unwrap()
        })
    });
}

fn bench_frame_emission(c: &mut Criterion) {
    let (network, mapping, config, sentinels) = setup();
    let probe = TelemetryProbe::new(
        &network,
        &mapping,
        &ConditionMap::new(),
        &config,
        &sentinels,
        TapConfig::default(),
    )
    .unwrap();
    let mut batch = 0u64;
    c.bench_function("telemetry_frame_emit", |b| {
        b.iter(|| {
            batch = batch.wrapping_add(1);
            probe.frame(batch, 42)
        })
    });
}

fn bench_detector_scoring(c: &mut Criterion) {
    let (network, mapping, config, sentinels) = setup();
    let probe = TelemetryProbe::new(
        &network,
        &mapping,
        &ConditionMap::new(),
        &config,
        &sentinels,
        TapConfig::default(),
    )
    .unwrap();
    let calibration: Vec<TelemetryFrame> = (0..32).map(|b| probe.frame(b, 1)).collect();
    let stream: Vec<TelemetryFrame> = (0..16).map(|b| probe.frame(b, 2)).collect();
    let mut suite = default_detectors();
    for d in &mut suite {
        d.calibrate(&calibration).unwrap();
    }
    c.bench_function("detector_suite_score_16_frames", |b| {
        b.iter(|| {
            let mut total = 0.0;
            for d in &mut suite {
                d.reset();
                for frame in &stream {
                    total += d.score(frame);
                }
            }
            total
        })
    });
}

/// The backend axis: attacked-probe construction through each datapath
/// backend on a reduced profile (the optical path simulates every slot).
fn bench_probe_backends(c: &mut Criterion) {
    use safelight_onn::{BackendKind, BlockConfig};
    let bundle = build_model(ModelKind::Cnn1, 7).unwrap();
    let config = safelight_onn::AcceleratorConfig::custom(
        BlockConfig {
            vdp_units: 4,
            bank_rows: 4,
            bank_cols: 8,
        },
        BlockConfig {
            vdp_units: 8,
            bank_rows: 16,
            bank_cols: 16,
        },
    )
    .unwrap();
    let mapping = safelight_onn::WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let sentinels = SentinelPlan::new(&mapping, &config, 8, 0.7);
    let attacked = inject(
        &ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0),
        &config,
        7,
    )
    .unwrap();
    let mut group = c.benchmark_group("probe_backend");
    group.sample_size(10);
    for kind in BackendKind::all() {
        let backend = kind.build(&config);
        group.bench_function(
            criterion::BenchmarkId::from_parameter(backend.name()),
            |b| {
                b.iter(|| {
                    backend
                        .probe(
                            &bundle.network,
                            &mapping,
                            &attacked,
                            &sentinels,
                            TapConfig::default(),
                        )
                        .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_probe_construction,
    bench_frame_emission,
    bench_detector_scoring,
    bench_probe_backends
);
criterion_main!(benches);

//! Accelerator-layer benchmarks: weight-stationary mapping, effective-weight
//! evaluation and the physical VDP datapath.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_onn::{
    corrupt_network, effective_weight_row, AcceleratorConfig, BackendKind, BlockConfig, BlockKind,
    ConditionMap, DropResponseModel, LayerSpec, MrCondition, OpticalVdp, WeightMapping,
};

fn bench_mapping_locate(c: &mut Criterion) {
    let bundle = build_model(ModelKind::Vgg16s, 1).unwrap();
    let config = matched_accelerator(ModelKind::Vgg16s).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    c.bench_function("mapping_locate_vgg", |b| {
        let mut off = 0usize;
        b.iter(|| {
            off = (off + 97) % 196_608;
            mapping.locate(black_box(6), black_box(off)).unwrap()
        })
    });
}

fn bench_effective_row(c: &mut Criterion) {
    let p = DropResponseModel::from_config(&AcceleratorConfig::paper().unwrap());
    let weights: Vec<f64> = (0..20).map(|i| (i as f64 / 20.0) - 0.5).collect();
    let mut conds = vec![MrCondition::Healthy; 20];
    conds[7] = MrCondition::Parked;
    conds[12] = MrCondition::Heated { delta_kelvin: 14.6 };
    c.bench_function("effective_weight_row_20ch", |b| {
        b.iter(|| effective_weight_row(black_box(&weights), black_box(&conds), &p))
    });
}

fn bench_corrupt_network_clean(c: &mut Criterion) {
    let bundle = build_model(ModelKind::Cnn1, 1).unwrap();
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let conditions = ConditionMap::new();
    c.bench_function("corrupt_network_cnn1_clean", |b| {
        b.iter(|| corrupt_network(&bundle.network, &mapping, &conditions, &config).unwrap())
    });
}

fn bench_optical_vdp(c: &mut Criterion) {
    let config = AcceleratorConfig::paper().unwrap();
    let mut vdp = OpticalVdp::new(&config, 20).unwrap();
    let inputs: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
    let weights: Vec<f64> = (0..20).map(|i| (i as f64 / 20.0) - 0.5).collect();
    let conds = vec![MrCondition::Healthy; 20];
    c.bench_function("optical_vdp_dot_20ch", |b| {
        b.iter(|| {
            vdp.dot(black_box(&inputs), black_box(&weights), &conds)
                .unwrap()
        })
    });
}

/// The backend axis: the same attacked derivation through each
/// [`InferenceBackend`](safelight_onn::InferenceBackend) — quantifies the
/// fast-vs-optical-vs-quantized cost gap on a fixed small fixture.
fn bench_backend_derive(c: &mut Criterion) {
    let mut net = safelight_neuro::Network::new();
    net.push(safelight_neuro::Flatten::new());
    let fc = safelight_neuro::Linear::new(16, 8, 3).unwrap();
    net.push(fc);
    let config = AcceleratorConfig::custom(
        BlockConfig {
            vdp_units: 2,
            bank_rows: 2,
            bank_cols: 8,
        },
        BlockConfig {
            vdp_units: 4,
            bank_rows: 4,
            bank_cols: 8,
        },
    )
    .unwrap();
    let mapping = WeightMapping::new(&config, &[LayerSpec::new("fc", BlockKind::Fc, 128)]).unwrap();
    let mut conditions = ConditionMap::new();
    for ring in [3u64, 17, 40, 77, 101] {
        conditions.set(BlockKind::Fc, ring, MrCondition::Parked);
    }
    let mut group = c.benchmark_group("backend_derive");
    group.sample_size(10);
    for kind in BackendKind::all() {
        let backend = kind.build(&config);
        group.bench_function(BenchmarkId::from_parameter(backend.name()), |b| {
            b.iter(|| {
                backend
                    .derive_network(black_box(&net), &mapping, &conditions)
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mapping_locate,
    bench_effective_row,
    bench_corrupt_network_clean,
    bench_optical_vdp,
    bench_backend_derive
);
criterion_main!(benches);

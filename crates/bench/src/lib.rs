//! Benchmark and reproduction harness for the SafeLight workspace.
//!
//! This crate carries no library code of its own; it exists for
//!
//! * the `repro` binary (`src/bin/repro.rs`), which regenerates every table
//!   and figure of the paper (`repro --help` for the flag list), and
//! * the Criterion micro-benchmarks under `benches/`, covering the
//!   photonic device models, the thermal solver, the neural substrate, the
//!   accelerator mapping/execution layers and the attack injectors.

#![forbid(unsafe_code)]

//! Regenerates every table and figure of the SafeLight paper.
//!
//! ```text
//! repro [--quick|--full] [--model cnn1|resnet18|vgg16|all] [--out-dir DIR]
//!       [--vectors LIST] [--selections LIST] [--json]
//!       [--backend fast|optical|quantized[:WBITS[:RBITS]]]
//!       [--rate R|inf] [--arrival closed|poisson:R|bursty:R[:B]]
//!       [--slo SPEC] [--profile] [--quiet] [--verbose]
//!       [--table1] [--fig6] [--fig7] [--fig8] [--fig9] [--detection]
//!       [--serve] [--chaos] [--ablation] [--all]
//! ```
//!
//! Each artifact prints the same rows/series the paper reports; the Fig. 6
//! heatmap is additionally written as CSV/PGM files under `--out-dir`.
//!
//! `--vectors` widens the Fig. 7 threat model beyond the paper's pair:
//! a comma-separated list of `actuation`, `hotspot`, `laser[:LOSS_DB]`,
//! `trim[:DETUNE_REL]`, `stacked` (actuation+hotspot in one scenario) or
//! `extended` (all of the above). `--selections` sweeps trojan-placement
//! strategies: `uniform`, `clustered`, `targeted` or `all`.
//!
//! `--backend` selects which datapath evaluates every scenario: the fast
//! analytic path (default), the slow device-level optical simulation, or
//! the finite-bit-depth quantized converter model — the same grid runs
//! against any of them unchanged.
//!
//! `--detection` runs the runtime trojan-detection evaluation (ROC,
//! latency, per-vector detectability) over the same vectors/selections
//! grid. `--serve` runs the secure serving-runtime evaluation: every
//! scenario replayed as a request stream with mid-stream compromise
//! against the closed-loop fleet (detect → quarantine/remap → failover)
//! and a no-response baseline. `--rate R` (or the more general
//! `--arrival MODEL`) replays the serving and chaos streams open-loop
//! through the request plane at a finite arrival rate (requests per
//! virtual tick), reporting per-scenario p50/p99/p999 service latency,
//! sustained throughput and shed rate; at a finite rate `--serve` also
//! runs the throughput-vs-p99 rate sweep and writes
//! `serving_<model>_sweep.csv`. `--chaos` runs the chaos evaluation grid
//! (benign faults alone, trojans alone, fault+trojan overlap) against the
//! fault-tolerant runtime and reports the spurious-quarantine rate,
//! trojan TPR under fault discrimination and crash-recovery latency.
//! `--json` writes machine-readable `.json` results next to every CSV, so
//! downstream tooling doesn't scrape tables.
//!
//! `--profile` turns on the `safelight-obs` observability plane for the
//! `--serve`/`--chaos` evaluations: the committed (deterministic) audit
//! trace, the wall-clock profile sidecar and the metrics snapshot are
//! written next to the report artifacts, and a per-phase timing table is
//! printed at the end of the run. `--slo SPEC` attaches a service-level
//! objective to those evaluations (`default`, or comma-separated
//! overrides like `avail=0.9,p99=16,p999=32,shed=0.05,spurious=0`):
//! every serving/chaos row gains SLO verdict columns, the virtual-time
//! alert rules are evaluated over the metric streams (firings land in
//! the audit trace and metrics snapshot), and incident forensics
//! reconstructs one report per injected fault/attack, written as
//! `<stem>_incidents.txt`/`.json`. `--quiet` suppresses progress chatter
//! (result tables still print); `--verbose` adds debug detail. See
//! `docs/observability.md`.

use std::path::PathBuf;

use safelight::defense::noise_ablation_variants;
use safelight::experiment::{
    run_detection_experiment, run_fig6, run_fig7, run_fig9_from, workbench, ExperimentOptions,
    Fidelity,
};
use safelight::models::{table1, ModelKind};
use safelight::prelude::*;
use safelight_obs::{
    debug, error, info, profile_phases, profile_reset, render_table, result, set_max_level,
    set_profile_enabled, Level, SloSpec,
};
use safelight_onn::{BackendKind, BlockKind};
use safelight_serve::{ArrivalModel, ObsArtifacts};

struct Args {
    fidelity: Fidelity,
    models: Vec<ModelKind>,
    out_dir: PathBuf,
    vectors: Vec<Vec<VectorSpec>>,
    selections: Vec<Selection>,
    backend: BackendKind,
    arrival: ArrivalModel,
    slo: Option<SloSpec>,
    json: bool,
    profile: bool,
    table1: bool,
    fig6: bool,
    fig7: bool,
    fig8: bool,
    fig9: bool,
    detection: bool,
    serve: bool,
    chaos: bool,
    ablation: bool,
}

fn parse_vectors(list: &str) -> Result<Vec<Vec<VectorSpec>>, String> {
    let mut stacks = Vec::new();
    for token in list.split(',') {
        match token {
            "stacked" => stacks.push(safelight::attack::stacked_pair()),
            "extended" => stacks.extend(safelight::attack::extended_stacks()),
            single => stacks.push(vec![single
                .parse::<VectorSpec>()
                .map_err(|e| e.to_string())?]),
        }
    }
    Ok(stacks)
}

fn parse_selections(list: &str) -> Result<Vec<Selection>, String> {
    if list == "all" {
        return Ok(Selection::all().to_vec());
    }
    list.split(',')
        .map(|token| token.parse::<Selection>().map_err(|e| e.to_string()))
        .collect()
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        fidelity: Fidelity::Quick,
        models: ModelKind::all().to_vec(),
        out_dir: PathBuf::from("target/safelight-artifacts"),
        vectors: VectorSpec::paper_pair().map(|v| vec![v]).into(),
        selections: vec![Selection::Uniform],
        backend: BackendKind::Fast,
        arrival: ArrivalModel::Closed,
        slo: None,
        json: false,
        profile: false,
        table1: false,
        fig6: false,
        fig7: false,
        fig8: false,
        fig9: false,
        detection: false,
        serve: false,
        chaos: false,
        ablation: false,
    };
    let mut any = false;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => args.fidelity = Fidelity::Quick,
            "--full" => args.fidelity = Fidelity::Full,
            "--model" => {
                let value = iter.next().ok_or("--model needs a value")?;
                args.models = match value.as_str() {
                    "cnn1" => vec![ModelKind::Cnn1],
                    "resnet18" => vec![ModelKind::ResNet18s],
                    "vgg16" => vec![ModelKind::Vgg16s],
                    "all" => ModelKind::all().to_vec(),
                    other => return Err(format!("unknown model `{other}`")),
                };
            }
            "--vectors" => {
                args.vectors = parse_vectors(&iter.next().ok_or("--vectors needs a value")?)?;
            }
            "--selections" => {
                args.selections =
                    parse_selections(&iter.next().ok_or("--selections needs a value")?)?;
            }
            "--backend" => {
                args.backend = iter.next().ok_or("--backend needs a value")?.parse()?;
            }
            "--rate" => {
                let value = iter.next().ok_or("--rate needs a value")?;
                args.arrival = match value.as_str() {
                    "inf" | "infinite" | "closed" => ArrivalModel::Closed,
                    rate => ArrivalModel::Poisson {
                        rate: rate
                            .parse::<f64>()
                            .map_err(|_| format!("bad --rate `{rate}`"))?,
                    },
                };
            }
            "--arrival" => {
                args.arrival = iter.next().ok_or("--arrival needs a value")?.parse()?;
            }
            "--slo" => {
                args.slo = Some(iter.next().ok_or("--slo needs a value")?.parse()?);
            }
            "--out-dir" => {
                args.out_dir = PathBuf::from(iter.next().ok_or("--out-dir needs a value")?);
            }
            "--table1" => {
                args.table1 = true;
                any = true;
            }
            "--fig6" => {
                args.fig6 = true;
                any = true;
            }
            "--fig7" => {
                args.fig7 = true;
                any = true;
            }
            "--fig8" => {
                args.fig8 = true;
                any = true;
            }
            "--fig9" => {
                args.fig9 = true;
                any = true;
            }
            "--detection" => {
                args.detection = true;
                any = true;
            }
            "--serve" => {
                args.serve = true;
                any = true;
            }
            "--chaos" => {
                args.chaos = true;
                any = true;
            }
            "--json" => args.json = true,
            "--profile" => args.profile = true,
            "--quiet" => set_max_level(Level::Warn),
            "--verbose" => set_max_level(Level::Debug),
            "--ablation" => {
                args.ablation = true;
                any = true;
            }
            "--all" => {
                args.table1 = true;
                args.fig6 = true;
                args.fig7 = true;
                args.fig8 = true;
                args.fig9 = true;
                args.detection = true;
                args.serve = true;
                args.chaos = true;
                args.ablation = true;
                any = true;
            }
            "--help" | "-h" => {
                result!(
                    "usage: repro [--quick|--full] [--model cnn1|resnet18|vgg16|all] \
                     [--out-dir DIR] [--vectors actuation,hotspot,laser[:DB],trim[:REL],\
                     stacked|extended] [--selections uniform,clustered,targeted|all] \
                     [--backend fast|optical|quantized[:WBITS[:RBITS]]] \
                     [--rate R|inf] [--arrival closed|poisson:R|bursty:R[:B]] \
                     [--slo default|avail=A,p99=T,p999=T,shed=S,spurious=N] \
                     [--json] [--profile] [--quiet] [--verbose] \
                     [--table1] [--fig6] [--fig7] [--fig8] [--fig9] \
                     [--detection] [--serve] [--chaos] [--ablation] [--all]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if !any {
        args.table1 = true;
        args.fig6 = true;
        args.fig7 = true;
    }
    Ok(args)
}

fn pct(x: f64) -> String {
    format!("{:6.2}%", x * 100.0)
}

/// Writes `stem.csv` (and, when `json` is given, `stem.json`) under
/// `out_dir`, reporting the paths on stdout.
fn write_artifact(out_dir: &std::path::Path, stem: &str, csv: &str, json: Option<String>) {
    std::fs::create_dir_all(out_dir).ok();
    let csv_path = out_dir.join(format!("{stem}.csv"));
    std::fs::write(&csv_path, csv).ok();
    match json {
        Some(body) => {
            let json_path = out_dir.join(format!("{stem}.json"));
            std::fs::write(&json_path, body).ok();
            result!(
                "series written to {} and {}",
                csv_path.display(),
                json_path.display()
            );
        }
        None => result!("series written to {}", csv_path.display()),
    }
}

/// Writes the observability artifacts of a `--profile`/`--slo` run under
/// `out_dir`: the committed (deterministic) trace, the wall-clock profile
/// sidecar, the metrics snapshot in Prometheus/CSV (and, with `--json`,
/// JSON) renderings, and — when an SLO judged the run — the incident
/// forensics reports.
fn write_obs_artifacts(out_dir: &std::path::Path, stem: &str, obs: &ObsArtifacts, json: bool) {
    std::fs::create_dir_all(out_dir).ok();
    let write = |suffix: &str, body: &str| {
        let path = out_dir.join(format!("{stem}{suffix}"));
        std::fs::write(&path, body).ok();
        debug!("wrote {} ({} bytes)", path.display(), body.len());
        path
    };
    let trace = write("_trace.txt", &obs.trace);
    write("_profile.txt", &obs.profile);
    let prom = write("_metrics.prom", &obs.metrics.prometheus());
    write("_metrics.csv", &obs.metrics.csv());
    if json {
        write("_metrics.json", &obs.metrics.json());
    }
    result!(
        "observability artifacts written to {} and {}",
        trace.display(),
        prom.display()
    );
    if !obs.incidents.is_empty() {
        let txt = write(
            "_incidents.txt",
            &safelight_serve::incidents_txt(&obs.incidents),
        );
        if json {
            write(
                "_incidents.json",
                &safelight_serve::incidents_json(&obs.incidents),
            );
        }
        let matched = obs.incidents.iter().filter(|i| i.root_cause_match).count();
        result!(
            "incident forensics: {} incident(s), {} root-cause matched, written to {}",
            obs.incidents.len(),
            matched,
            txt.display()
        );
    }
}

/// Prints the per-row SLO verdict table shared by `--serve` and `--chaos`
/// (`rows` pairs a row label with its verdict, if any).
fn print_slo_verdicts<'a>(
    rows: impl Iterator<Item = (String, Option<&'a safelight_obs::SloVerdict>)>,
) {
    result!(
        "\nSLO verdicts:\n{:<44} {:>5} {:>12} {:<40}",
        "row",
        "pass",
        "burn",
        "violations"
    );
    for (label, verdict) in rows {
        let Some(v) = verdict else { continue };
        result!(
            "{:<44} {:>5} {:>12.3} {:<40}",
            label,
            if v.pass { "ok" } else { "FAIL" },
            v.budget_burn,
            if v.violated.is_empty() {
                "none".to_string()
            } else {
                v.violated.join("+")
            }
        );
    }
}

fn print_table1() -> Result<(), SafelightError> {
    result!("\n=== Table I: CNN model parameters (paper → this reproduction) ===");
    result!(
        "{:<10} {:<26} {:>12} {:>22} {:>10} {:>26} {:>26}",
        "Model",
        "Dataset",
        "CONV layers",
        "CONV params",
        "FC layers",
        "FC params",
        "Total"
    );
    for row in table1()? {
        result!(
            "{:<10} {:<26} {:>12} {:>22} {:>10} {:>26} {:>26}",
            row.model,
            format!("{} → {}", row.dataset.0, row.dataset.1),
            format!("{} → {}", row.conv_layers.0, row.conv_layers.1),
            format!("{} → {}", row.conv_params.0, row.conv_params.1),
            format!("{} → {}", row.fc_layers.0, row.fc_layers.1),
            format!("{} → {}", row.fc_params.0, row.fc_params.1),
            format!("{} → {}", row.total_params.0, row.total_params.1),
        );
    }
    Ok(())
}

fn print_fig6(opts: &ExperimentOptions, out_dir: &std::path::Path) -> Result<(), SafelightError> {
    result!("\n=== Fig. 6: CONV-block heatmap under hotspot attacks ===");
    let artifact = run_fig6(opts)?;
    result!("attacked banks: {:?}", artifact.attacked_banks);
    result!("peak ΔT: {:.1} K", artifact.peak_delta_kelvin);
    result!(
        "mean ΔT across non-attacked banks (spill-over): {:.2} K",
        artifact.neighbour_mean_delta_kelvin
    );
    std::fs::create_dir_all(out_dir).ok();
    let csv = out_dir.join("fig6_heatmap.csv");
    let pgm = out_dir.join("fig6_heatmap.pgm");
    std::fs::write(&csv, artifact.heatmap.to_csv()).ok();
    std::fs::write(&pgm, artifact.heatmap.to_pgm()).ok();
    result!("heatmap written to {} and {}", csv.display(), pgm.display());
    result!("{}", artifact.heatmap.to_ascii());
    Ok(())
}

fn print_fig7(
    kind: ModelKind,
    opts: &ExperimentOptions,
    out_dir: &std::path::Path,
    json: bool,
) -> Result<(), SafelightError> {
    result!("\n=== Fig. 7 ({kind}): susceptibility to actuation & hotspot attacks ===");
    let (bench, report) = run_fig7(kind, opts)?;
    result!(
        "baseline (clean accelerator) accuracy: {}   [CONV rounds: {}, FC rounds: {}]",
        pct(report.baseline),
        bench.mapping.rounds(BlockKind::Conv),
        bench.mapping.rounds(BlockKind::Fc),
    );
    result!(
        "{:<20} {:<10} {:<8} {:>6} {:>6} {:>10} {:>10} {:>10}",
        "vector",
        "selection",
        "target",
        "pct",
        "eff%",
        "min",
        "mean",
        "max"
    );
    // Group trials by scenario cell in input order — the grid may carry
    // any mix of vectors, stacks and selection strategies.
    type CellKey = (String, String, String, u64);
    let mut cells: Vec<(CellKey, Vec<&safelight::eval::TrialResult>)> = Vec::new();
    for trial in &report.trials {
        let key = (
            trial.scenario.vector_label(),
            trial.scenario.selection.to_string(),
            trial.scenario.target.to_string(),
            (trial.scenario.fraction * 1e9).round() as u64,
        );
        match cells.iter_mut().find(|(k, _)| *k == key) {
            Some((_, trials)) => trials.push(trial),
            None => cells.push((key, vec![trial])),
        }
    }
    for ((vector, selection, target, _), trials) in &cells {
        let accs: Vec<f64> = trials.iter().map(|t| t.accuracy).collect();
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = accs.iter().sum::<f64>() / accs.len() as f64;
        let effective =
            trials.iter().map(|t| t.effective_fraction).sum::<f64>() / trials.len() as f64;
        result!(
            "{:<20} {:<10} {:<8} {:>5.0}% {:>5.1}% {:>10} {:>10} {:>10}",
            vector,
            selection,
            target,
            trials[0].scenario.fraction * 100.0,
            effective * 100.0,
            pct(min),
            pct(mean),
            pct(max)
        );
    }
    result!(
        "worst-case drop: {} (paper: 7.49% CNN_1 / 26.4% ResNet18 / 80.46% VGG16_v at 10% hotspot CONV+FC)",
        pct(report.worst_drop())
    );
    write_artifact(
        out_dir,
        &format!("fig7_{}", kind.label().to_lowercase()),
        &safelight::eval::susceptibility_csv(&report),
        json.then(|| safelight::eval::susceptibility_json(&report)),
    );
    Ok(())
}

fn print_fig8(
    kind: ModelKind,
    opts: &ExperimentOptions,
    out_dir: &std::path::Path,
    json: bool,
) -> Result<safelight::experiment::Fig8Run, SafelightError> {
    result!("\n=== Fig. 8 ({kind}): robustness of mitigation-trained variants ===");
    let fig8 = safelight::experiment::run_fig8(kind, opts)?;
    let report = &fig8.report;
    result!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant",
        "baseline",
        "min",
        "q1",
        "median",
        "q3",
        "max"
    );
    for o in &report.outcomes {
        result!(
            "{:<10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            o.variant.label(),
            pct(o.baseline),
            pct(o.stats.min),
            pct(o.stats.q1),
            pct(o.stats.median),
            pct(o.stats.q3),
            pct(o.stats.max)
        );
    }
    if let Some(best) = report.most_robust() {
        result!(
            "most robust variant: {} (paper found l2+n3 / l2+n5 / l2+n2 for its three models)",
            best.variant.label()
        );
    }
    write_artifact(
        out_dir,
        &format!("fig8_{}", kind.label().to_lowercase()),
        &safelight::eval::mitigation_csv(report),
        json.then(|| safelight::eval::mitigation_json(report)),
    );
    Ok(fig8)
}

fn print_fig9(
    kind: ModelKind,
    opts: &ExperimentOptions,
    out_dir: &std::path::Path,
    json: bool,
    fig8: Option<safelight::experiment::Fig8Run>,
) -> Result<(), SafelightError> {
    result!("\n=== Fig. 9 ({kind}): robust vs original under CONV+FC attacks ===");
    // Fig. 9 needs Fig. 8's winner; reuse the run `--fig8` just produced
    // (the whole point of `Fig8Run`) and compute it only when Fig. 9 runs
    // alone.
    let fig8 = match fig8 {
        Some(fig8) => fig8,
        None => safelight::experiment::run_fig8(kind, opts)?,
    };
    let (best, report) = run_fig9_from(&fig8, opts)?;
    result!(
        "robust variant: {}   original baseline {}   robust baseline {}",
        best.label(),
        pct(report.original_baseline),
        pct(report.robust_baseline)
    );
    result!(
        "{:<10} {:>6} {:>30} {:>30} {:>10}",
        "vector",
        "pct",
        "original (min/mean/max)",
        "robust (min/mean/max)",
        "recovery"
    );
    for i in &report.intervals {
        result!(
            "{:<10} {:>5.0}% {:>30} {:>30} {:>10}",
            i.vector.to_string(),
            i.fraction * 100.0,
            format!(
                "{} / {} / {}",
                pct(i.original.0),
                pct(i.original.1),
                pct(i.original.2)
            ),
            format!(
                "{} / {} / {}",
                pct(i.robust.0),
                pct(i.robust.1),
                pct(i.robust.2)
            ),
            pct(i.worst_case_recovery())
        );
    }
    write_artifact(
        out_dir,
        &format!("fig9_{}", kind.label().to_lowercase()),
        &safelight::eval::recovery_csv(&report),
        json.then(|| safelight::eval::recovery_json(&report)),
    );
    Ok(())
}

fn print_detection(
    kind: ModelKind,
    opts: &ExperimentOptions,
    out_dir: &std::path::Path,
    json: bool,
) -> Result<(), SafelightError> {
    result!("\n=== Detection ({kind}): runtime trojan detection over the scenario grid ===");
    let (_, report) = run_detection_experiment(kind, opts)?;
    result!("{:<12} {:>12} {:>10}", "detector", "threshold", "cal. FPR");
    for op in &report.operating {
        result!(
            "{:<12} {:>12.4} {:>10}",
            op.detector,
            op.threshold,
            pct(op.fpr)
        );
    }
    result!(
        "\n{:<12} {:<20} {:<10} {:<8} {:>5} {:>8} {:>8} {:>10}",
        "detector",
        "vector",
        "selection",
        "target",
        "pct",
        "TPR",
        "AUC",
        "latency"
    );
    for c in &report.cells {
        result!(
            "{:<12} {:<20} {:<10} {:<8} {:>4.0}% {:>8} {:>8.3} {:>10}",
            c.detector,
            c.vector,
            c.selection,
            c.target,
            c.fraction * 100.0,
            pct(c.tpr),
            c.auc,
            if c.mean_latency_frames.is_finite() {
                format!("{:.1} fr", c.mean_latency_frames)
            } else {
                "—".into()
            }
        );
    }
    let stem = format!("detection_{}", kind.label().to_lowercase());
    write_artifact(
        out_dir,
        &format!("{stem}_roc"),
        &safelight::eval::detection_roc_csv(&report),
        None,
    );
    write_artifact(
        out_dir,
        &format!("{stem}_summary"),
        &safelight::eval::detection_summary_csv(&report),
        json.then(|| safelight::eval::detection_json(&report)),
    );
    Ok(())
}

fn print_serve(
    kind: ModelKind,
    opts: &ExperimentOptions,
    out_dir: &std::path::Path,
    json: bool,
    arrival: ArrivalModel,
    profile: bool,
    slo: Option<SloSpec>,
) -> Result<(), SafelightError> {
    result!("\n=== Serving ({kind}): closed-loop secure serving runtime ===");
    let observe = profile || slo.is_some();
    let (_, report, obs) =
        safelight_serve::eval::run_serving_experiment_observed(kind, opts, arrival, observe, slo)?;
    result!(
        "clean fleet accuracy: {}   [fleet {} × batch {} × {} batches, onset at {}, \
         arrival {}]",
        pct(report.clean_accuracy),
        report.fleet_size,
        report.batch_size,
        report.batches,
        report.onset_batch,
        report.arrival
    );
    for (name, threshold) in report.detectors.iter().zip(&report.thresholds) {
        result!("operating threshold {name:<12} {threshold:.4}");
    }
    result!(
        "\n{:<20} {:<10} {:<8} {:>5} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:<16} {:>6}",
        "vector",
        "selection",
        "target",
        "pct",
        "degraded",
        "recovered",
        "baseline",
        "detect",
        "recov",
        "avail",
        "action",
        "remap"
    );
    for r in &report.rows {
        let latency = |x: f64| {
            if x.is_finite() {
                format!("{x:.0} b")
            } else {
                "—".into()
            }
        };
        let acc = |x: f64| {
            if x.is_finite() {
                pct(x)
            } else {
                "     —".into()
            }
        };
        result!(
            "{:<20} {:<10} {:<8} {:>4.0}% {:>9} {:>9} {:>9} {:>9} {:>7} {:>6.1}% {:<16} {:>6}",
            r.scenario.vector_label(),
            r.scenario.selection,
            r.scenario.target,
            r.scenario.fraction * 100.0,
            acc(r.degraded_accuracy),
            acc(r.recovered_accuracy),
            acc(r.baseline_post_accuracy),
            latency(r.detection_latency_batches),
            latency(r.recovery_latency_batches),
            r.availability * 100.0,
            r.action,
            r.remapped_rings
        );
    }
    result!(
        "\nrequest-plane service latency (virtual ticks) per scenario:\n\
         {:<20} {:<10} {:>5} {:>8} {:>8} {:>8} {:>10} {:>7}",
        "vector",
        "selection",
        "pct",
        "p50",
        "p99",
        "p999",
        "thpt/tick",
        "shed"
    );
    for r in &report.rows {
        result!(
            "{:<20} {:<10} {:>4.0}% {:>8.1} {:>8.1} {:>8.1} {:>10.2} {:>6.1}%",
            r.scenario.vector_label(),
            r.scenario.selection,
            r.scenario.fraction * 100.0,
            r.p50_latency,
            r.p99_latency,
            r.p999_latency,
            r.throughput,
            r.shed_rate * 100.0
        );
    }
    if report.rows.iter().any(|r| r.slo.is_some()) {
        print_slo_verdicts(report.rows.iter().map(|r| {
            (
                format!(
                    "{} {} {:.0}%",
                    r.scenario.vector_label(),
                    r.scenario.selection,
                    r.scenario.fraction * 100.0
                ),
                r.slo.as_ref(),
            )
        }));
    }
    write_artifact(
        out_dir,
        &format!("serving_{}", kind.label().to_lowercase()),
        &safelight_serve::report::serving_csv(&report),
        json.then(|| safelight_serve::report::serving_json(&report)),
    );
    if let Some(obs) = &obs {
        write_obs_artifacts(
            out_dir,
            &format!("serving_{}", kind.label().to_lowercase()),
            obs,
            json,
        );
    }
    // At a finite arrival rate, also sweep offered rates around the
    // fleet's per-tick drain capacity and locate the saturation point.
    let rate = report.arrival.rate();
    if rate.is_finite() {
        let capacity = (report.fleet_size * report.batch_size) as f64;
        let mut rates = vec![0.25 * capacity, 0.5 * capacity, 0.75 * capacity, rate];
        rates.sort_by(f64::total_cmp);
        rates.dedup();
        let (_, sweep) = safelight_serve::eval::run_rate_sweep_experiment(kind, opts, &rates)?;
        result!(
            "\nthroughput-vs-p99 sweep (clean fleet, saturation at rate {}):",
            if sweep.saturation_rate.is_finite() {
                format!("{}", sweep.saturation_rate)
            } else {
                "— (all swept rates saturate)".into()
            }
        );
        result!(
            "{:>8} {:>8} {:>8} {:>10} {:>8} {:>8} {:>8}",
            "rate",
            "offered",
            "served",
            "thpt/tick",
            "p50",
            "p99",
            "shed"
        );
        for p in &sweep.rows {
            result!(
                "{:>8.2} {:>8} {:>8} {:>10.2} {:>8.1} {:>8.1} {:>7.1}%",
                p.rate,
                p.offered,
                p.served,
                p.throughput,
                p.p50_latency,
                p.p99_latency,
                p.shed_rate * 100.0
            );
        }
        write_artifact(
            out_dir,
            &format!("serving_{}_sweep", kind.label().to_lowercase()),
            &safelight_serve::report::rate_sweep_csv(&sweep),
            json.then(|| safelight_serve::report::rate_sweep_json(&sweep)),
        );
    }
    Ok(())
}

fn print_chaos(
    kind: ModelKind,
    opts: &ExperimentOptions,
    out_dir: &std::path::Path,
    json: bool,
    arrival: ArrivalModel,
    profile: bool,
    slo: Option<SloSpec>,
) -> Result<(), SafelightError> {
    result!("\n=== Chaos ({kind}): benign faults vs trojans on the fault-tolerant runtime ===");
    let observe = profile || slo.is_some();
    let (_, report, obs) =
        safelight_serve::chaos::run_chaos_experiment_observed(kind, opts, arrival, observe, slo)?;
    result!(
        "clean fleet accuracy: {}   [fleet {} × batch {} × {} batches, trojan onset at {}, \
         arrival {}]",
        pct(report.clean_accuracy),
        report.fleet_size,
        report.batch_size,
        report.batches,
        report.onset_batch,
        report.arrival
    );
    result!(
        "spurious-quarantine rate: {}   trojan TPR: {}   overlap missed: {}   mean crash recovery: {}",
        pct(report.spurious_quarantine_rate),
        pct(report.trojan_tpr),
        pct(report.overlap_missed_rate),
        if report.mean_crash_recovery_batches.is_finite() {
            format!("{:.1} b", report.mean_crash_recovery_batches)
        } else {
            "—".into()
        }
    );
    result!(
        "\n{:<8} {:<34} {:<30} {:>6} {:>8} {:>6} {:>7} {:>9} {:>7} {:>7} {:>6} {:<24}",
        "kind",
        "fault",
        "scenario",
        "trojan",
        "spurious",
        "maint",
        "crash",
        "post_acc",
        "avail",
        "p99",
        "shed",
        "action"
    );
    for r in &report.rows {
        let acc = |x: f64| {
            if x.is_finite() {
                pct(x)
            } else {
                "     —".into()
            }
        };
        result!(
            "{:<8} {:<34} {:<30} {:>6} {:>8} {:>6} {:>7} {:>9} {:>6.1}% {:>7.1} {:>5.1}% {:<24}",
            r.kind,
            if r.fault.is_empty() { "—" } else { &r.fault },
            if r.scenario.is_empty() {
                "—"
            } else {
                &r.scenario
            },
            if r.trojan_detected { "yes" } else { "no" },
            if r.spurious_quarantine { "YES" } else { "no" },
            r.maintenance_events,
            if r.crash_recovery_batches.is_finite() {
                format!("{:.0} b", r.crash_recovery_batches)
            } else {
                "—".into()
            },
            acc(r.post_accuracy),
            r.availability * 100.0,
            r.p99_latency,
            r.shed_rate * 100.0,
            r.action
        );
    }
    if report.rows.iter().any(|r| r.slo.is_some()) {
        print_slo_verdicts(report.rows.iter().map(|r| {
            (
                format!(
                    "{} {}",
                    r.kind,
                    if r.fault.is_empty() {
                        &r.scenario
                    } else {
                        &r.fault
                    }
                ),
                r.slo.as_ref(),
            )
        }));
    }
    write_artifact(
        out_dir,
        &format!("chaos_{}", kind.label().to_lowercase()),
        &safelight_serve::report::chaos_csv(&report),
        json.then(|| safelight_serve::report::chaos_json(&report)),
    );
    if let Some(obs) = &obs {
        write_obs_artifacts(
            out_dir,
            &format!("chaos_{}", kind.label().to_lowercase()),
            obs,
            json,
        );
    }
    Ok(())
}

fn print_ablation(kind: ModelKind, opts: &ExperimentOptions) -> Result<(), SafelightError> {
    result!("\n=== Ablation ({kind}): noise-aware training without L2 ===");
    let bench = workbench(kind, opts)?;
    let recipe = opts.recipe(kind);
    let mut variants = vec![(VariantKind::Original, bench.original.clone())];
    for variant in noise_ablation_variants().into_iter().step_by(2) {
        let network = train_variant(
            kind,
            variant,
            &bench.data,
            &recipe,
            opts.cache_dir.as_deref(),
        )?;
        variants.push((variant, network));
    }
    let scenarios = scenario_grid(&[0.05], opts.fig8_trials());
    let report = run_mitigation(
        &variants,
        &bench.mapping,
        bench.backend.as_ref(),
        &bench.data.test,
        &scenarios,
        opts.seed,
        opts.threads,
    )?;
    result!(
        "{:<10} {:>10} {:>26}",
        "variant",
        "baseline",
        "median under 5% attacks"
    );
    for o in &report.outcomes {
        result!(
            "{:<10} {:>10} {:>26}",
            o.variant.label(),
            pct(o.baseline),
            pct(o.stats.median)
        );
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            error!("{e}");
            std::process::exit(2);
        }
    };
    let opts = ExperimentOptions {
        fidelity: args.fidelity,
        vectors: args.vectors.clone(),
        selections: args.selections.clone(),
        backend: args.backend,
        ..ExperimentOptions::default()
    };
    if args.profile {
        set_profile_enabled(true);
        profile_reset();
    }
    info!("datapath backend: {}", args.backend);
    debug!(
        "fidelity {:?}, {} model(s), arrival {}, out-dir {}",
        args.fidelity,
        args.models.len(),
        args.arrival,
        args.out_dir.display()
    );
    let started = std::time::Instant::now();

    let run = || -> Result<(), SafelightError> {
        if args.table1 {
            print_table1()?;
        }
        if args.fig6 {
            print_fig6(&opts, &args.out_dir)?;
        }
        for &kind in &args.models {
            if args.fig7 {
                print_fig7(kind, &opts, &args.out_dir, args.json)?;
            }
            let fig8 = if args.fig8 {
                Some(print_fig8(kind, &opts, &args.out_dir, args.json)?)
            } else {
                None
            };
            if args.fig9 {
                print_fig9(kind, &opts, &args.out_dir, args.json, fig8)?;
            }
            if args.detection {
                print_detection(kind, &opts, &args.out_dir, args.json)?;
            }
            if args.serve {
                print_serve(
                    kind,
                    &opts,
                    &args.out_dir,
                    args.json,
                    args.arrival,
                    args.profile,
                    args.slo,
                )?;
            }
            if args.chaos {
                print_chaos(
                    kind,
                    &opts,
                    &args.out_dir,
                    args.json,
                    args.arrival,
                    args.profile,
                    args.slo,
                )?;
            }
            if args.ablation {
                print_ablation(kind, &opts)?;
            }
        }
        Ok(())
    };
    if let Err(e) = run() {
        error!("{e}");
        std::process::exit(1);
    }
    if args.profile {
        let phases = profile_phases();
        if phases.is_empty() {
            info!("profiling enabled but no phases recorded");
        } else {
            result!("\n=== Profile: per-phase wall-clock (machine-dependent) ===");
            result!("{}", render_table(&phases).trim_end());
        }
    }
    // Which GEMM/conv kernel classes actually served the run: the dispatch
    // decision tree (docs/perf.md) in observable form. Cheap enough to
    // print unconditionally — it is the ground truth when a perf number
    // looks off ("did the SIMD tier actually engage on this machine?").
    let tier = safelight_neuro::GemmImpl::active();
    info!(
        "gemm tier: {} [{}]; kernels executed: {}",
        tier.name(),
        tier.isa(),
        safelight_neuro::linalg::kernel_stats::report()
    );
    info!("completed in {:.1} s", started.elapsed().as_secs_f64());
}

//! Ad-hoc per-layer forward timing probe (dev tool), built on the
//! `safelight-obs` profiling hooks: every layer forward runs under a
//! [`profile_span`] and the summary is the same per-phase table `repro
//! --profile` prints — including the per-shape-class GEMM phases the
//! linalg kernels record underneath the conv/fc layers.
use safelight_neuro::{Conv2d, Layer, Linear, MaxPool2d, Relu, Tensor};
use safelight_obs::{
    profile_phases, profile_reset, profile_span, render_table, result, set_profile_enabled,
};

fn time_layer(label: &'static str, layer: &mut dyn Layer, x: &Tensor) -> Tensor {
    // One untimed warmup, then 50 profiled repetitions per layer.
    let y = layer.forward(x, false).unwrap();
    for _ in 0..50 {
        let _span = profile_span(label);
        layer.forward(x, false).unwrap();
    }
    y
}

fn main() {
    set_profile_enabled(true);
    profile_reset();
    let x = Tensor::from_vec(
        vec![32, 1, 28, 28],
        (0..32 * 28 * 28).map(|i| (i as f32 * 0.01).sin()).collect(),
    )
    .unwrap();
    let mut conv1 = Conv2d::new(1, 8, 5, 1).unwrap();
    let y = time_layer("layer:conv1 1->8 k5 @28", &mut conv1, &x);
    let mut relu = Relu::new();
    let y = time_layer("layer:relu", &mut relu, &y);
    let mut pool1 = MaxPool2d::new(2).unwrap();
    let y = time_layer("layer:maxpool 28->14", &mut pool1, &y);
    let mut conv2 = Conv2d::new(8, 16, 3, 2).unwrap();
    let y = time_layer("layer:conv2 8->16 k3 @14", &mut conv2, &y);
    let mut pool2 = MaxPool2d::new(2).unwrap();
    let y = time_layer("layer:maxpool 14->7", &mut pool2, &y);
    let y = Tensor::from_vec(vec![32, 784], y.as_slice().to_vec()).unwrap();
    let mut fc1 = Linear::new(784, 48, 3).unwrap();
    let y = time_layer("layer:fc1 784->48", &mut fc1, &y);
    let mut fc2 = Linear::new(48, 24, 4).unwrap();
    let _ = time_layer("layer:fc2 48->24", &mut fc2, &y);
    result!("{}", render_table(&profile_phases()).trim_end());
}

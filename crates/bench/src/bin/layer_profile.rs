//! Ad-hoc per-layer forward timing probe (dev tool).
use safelight_neuro::{Conv2d, Layer, Linear, MaxPool2d, Relu, Tensor};
use std::time::Instant;

fn time_layer(label: &str, layer: &mut dyn Layer, x: &Tensor) -> Tensor {
    let y = layer.forward(x, false).unwrap();
    let reps = 50;
    let start = Instant::now();
    for _ in 0..reps {
        layer.forward(x, false).unwrap();
    }
    println!("{label:<28} {:?}", start.elapsed() / reps);
    y
}

fn main() {
    let x = Tensor::from_vec(
        vec![32, 1, 28, 28],
        (0..32 * 28 * 28).map(|i| (i as f32 * 0.01).sin()).collect(),
    )
    .unwrap();
    let mut conv1 = Conv2d::new(1, 8, 5, 1).unwrap();
    let y = time_layer("conv1 1->8 k5 @28", &mut conv1, &x);
    let mut relu = Relu::new();
    let y = time_layer("relu", &mut relu, &y);
    let mut pool1 = MaxPool2d::new(2).unwrap();
    let y = time_layer("maxpool 28->14", &mut pool1, &y);
    let mut conv2 = Conv2d::new(8, 16, 3, 2).unwrap();
    let y = time_layer("conv2 8->16 k3 @14", &mut conv2, &y);
    let mut pool2 = MaxPool2d::new(2).unwrap();
    let y = time_layer("maxpool 14->7", &mut pool2, &y);
    let y = Tensor::from_vec(vec![32, 784], y.as_slice().to_vec()).unwrap();
    let mut fc1 = Linear::new(784, 48, 3).unwrap();
    let y = time_layer("fc1 784->48", &mut fc1, &y);
    let mut fc2 = Linear::new(48, 24, 4).unwrap();
    let _ = time_layer("fc2 48->24", &mut fc2, &y);
}

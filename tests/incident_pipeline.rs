//! End-to-end tests of the incident-forensics layer: the full chaos grid
//! replayed under a [`safelight_serve::ServeObserver`] with an SLO spec
//! attached must reconstruct exactly one [`IncidentReport`] per injected
//! fault/attack, with the root cause matching the injected ground truth,
//! a causally ordered timeline, and every committed artifact (trace,
//! metrics, incident renderings) byte-identical across thread counts.

use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{Network, Trainer, TrainerConfig};
use safelight_obs::SloSpec;
use safelight_onn::{AnalyticBackend, WeightMapping};
use safelight_serve::chaos::{chaos_grid, run_chaos_observed};
use safelight_serve::eval::{run_serving_observed, ServingOptions};
use safelight_serve::{incidents_json, incidents_txt, IncidentReport};

/// A trained-enough CNN_1 on the scaled accelerator profile (the same
/// trade the serving/chaos/observability tests make).
fn trained_setup() -> (
    Network,
    WeightMapping,
    AcceleratorConfig,
    safelight_datasets::SplitDataset,
) {
    let data = digits(&SyntheticSpec {
        train: 120,
        test: 60,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    let cfg = TrainerConfig {
        epochs: 3,
        batch_size: 20,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    (network, mapping, config, data)
}

fn slo_opts() -> ServingOptions {
    ServingOptions {
        batch_size: 6,
        batches: 18,
        onset_batch: 6,
        calibration_frames: 24,
        clean_runs: 16,
        slo: Some(SloSpec::default()),
        ..ServingOptions::default()
    }
}

fn assert_timeline_ordered(inc: &IncidentReport) {
    let detected = inc
        .detected
        .as_ref()
        .unwrap_or_else(|| panic!("{}: no detection milestone\n{inc:#?}", inc.id));
    let discriminated = inc
        .discriminated
        .as_ref()
        .unwrap_or_else(|| panic!("{}: no discrimination milestone\n{inc:#?}", inc.id));
    let remediated = inc
        .remediated
        .as_ref()
        .unwrap_or_else(|| panic!("{}: no remediation milestone\n{inc:#?}", inc.id));
    let recovered = inc
        .recovered
        .as_ref()
        .unwrap_or_else(|| panic!("{}: no recovery milestone\n{inc:#?}", inc.id));
    assert!(
        detected.vt <= discriminated.vt
            && discriminated.vt <= remediated.vt
            && remediated.vt <= recovered.vt,
        "{}: timeline out of order\n{inc:#?}",
        inc.id
    );
}

#[test]
fn chaos_grid_yields_one_matching_incident_per_injected_case() {
    let (network, mapping, config, data) = trained_setup();
    let opts = slo_opts();
    let cases = chaos_grid(opts.onset_batch);
    let (report, artifacts) = run_chaos_observed(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &cases,
        &default_detectors(),
        &opts,
        2025,
        safelight_neuro::parallel::configured_threads(),
        true,
    )
    .unwrap();
    let artifacts = artifacts.expect("observe=true returns artifacts");

    // Every grid case injects a fault and/or a trojan, so the forensics
    // pass must reconstruct exactly one incident per case, in case order.
    assert_eq!(
        artifacts.incidents.len(),
        cases.len(),
        "one incident per injected case\n{:#?}",
        artifacts.incidents
    );
    for (idx, inc) in artifacts.incidents.iter().enumerate() {
        assert_eq!(inc.id, format!("case={idx:02}"), "incidents out of order");
        assert!(
            inc.root_cause_match,
            "{}: root cause mismatch: expected {:?}, observed {:?}\n{inc:#?}",
            inc.id, inc.expected, inc.observed
        );
        assert_timeline_ordered(inc);
        assert!(
            inc.detection_latency_batches.is_finite() && inc.detection_latency_batches >= 0.0,
            "{}: bad detection latency\n{inc:#?}",
            inc.id
        );
    }

    // Every case carries an SLO verdict column and the incident renderers
    // cover every incident.
    for row in &report.rows {
        assert!(row.slo.is_some(), "chaos row missing SLO verdict");
    }
    let txt = incidents_txt(&artifacts.incidents);
    let json = incidents_json(&artifacts.incidents);
    for inc in &artifacts.incidents {
        assert!(txt.contains(&inc.id), "{}: missing from txt", inc.id);
        assert!(
            json.contains(&format!("\"id\": \"{}\"", inc.id)),
            "{}: missing from json",
            inc.id
        );
    }
    // Alert firings from the per-case engines land in the audit trace.
    assert!(
        artifacts.trace.contains("event=alert_firing"),
        "no alert firings in a grid full of faults"
    );
}

#[test]
fn incident_artifacts_are_byte_identical_across_thread_counts() {
    let (network, mapping, config, data) = trained_setup();
    let opts = slo_opts();
    // A small mixed slice keeps the determinism check cheap: one sensor
    // fault, one crash-overlap, one trojan.
    let grid = chaos_grid(opts.onset_batch);
    let cases: Vec<_> = vec![grid[0].clone(), grid[8].clone(), grid[12].clone()];
    let run = |threads: usize| {
        run_chaos_observed(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &cases,
            &default_detectors(),
            &opts,
            7,
            threads,
            true,
        )
        .unwrap()
        .1
        .expect("observe=true returns artifacts")
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.trace, parallel.trace);
    assert_eq!(serial.metrics.prometheus(), parallel.metrics.prometheus());
    assert_eq!(
        incidents_txt(&serial.incidents),
        incidents_txt(&parallel.incidents)
    );
    assert_eq!(
        incidents_json(&serial.incidents),
        incidents_json(&parallel.incidents)
    );
}

#[test]
fn serving_rows_gain_slo_verdicts_and_incidents() {
    let (network, mapping, config, data) = trained_setup();
    let opts = slo_opts();
    let scenarios = vec![ScenarioSpec::new(
        VectorSpec::Actuation,
        AttackTarget::Both,
        0.10,
        0,
    )];
    let (report, artifacts) = run_serving_observed(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &scenarios,
        &default_detectors(),
        &opts,
        11,
        safelight_neuro::parallel::configured_threads(),
        true,
    )
    .unwrap();
    let artifacts = artifacts.expect("observe=true returns artifacts");
    assert_eq!(report.rows.len(), 1);
    let verdict = report.rows[0].slo.as_ref().expect("SLO verdict present");
    assert!(verdict.budget_burn.is_finite() || verdict.budget_burn.is_infinite());
    // The scenario injects a real trojan, so forensics reconstructs one
    // incident classifying it as such.
    assert_eq!(artifacts.incidents.len(), 1, "{:#?}", artifacts.incidents);
    let inc = &artifacts.incidents[0];
    assert!(
        inc.root_cause_match,
        "expected {:?}, observed {:?}\n{inc:#?}",
        inc.expected, inc.observed
    );
    assert_timeline_ordered(inc);

    // SLO off → no verdicts, no incidents, identical rows otherwise.
    let plain = ServingOptions { slo: None, ..opts };
    let (unjudged, arts) = run_serving_observed(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &scenarios,
        &default_detectors(),
        &plain,
        11,
        safelight_neuro::parallel::configured_threads(),
        true,
    )
    .unwrap();
    assert!(unjudged.rows[0].slo.is_none());
    assert!(arts.unwrap().incidents.is_empty());
}

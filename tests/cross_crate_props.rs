//! Cross-crate property tests: invariants that span the photonics,
//! accelerator and attack layers.

use proptest::prelude::*;
use safelight::attack::{inject, AttackTarget, ScenarioSpec, VectorSpec};
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_onn::{
    corrupt_network, effective_weight_row, AcceleratorConfig, BlockKind, ConditionMap,
    EffectiveWeightParams, MrCondition, WeightMapping,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Effective weights always stay within the accelerator's full scale,
    /// whatever the fault pattern.
    #[test]
    fn effective_weights_stay_in_full_scale(
        w in proptest::collection::vec(-1.0f64..1.0, 3..8),
        park_mask in proptest::collection::vec(any::<bool>(), 3..8),
        dt in 0.0f64..40.0,
    ) {
        let p = EffectiveWeightParams::from_config(&AcceleratorConfig::paper().unwrap());
        let n = w.len().min(park_mask.len());
        let w = &w[..n];
        let conds: Vec<MrCondition> = park_mask[..n]
            .iter()
            .enumerate()
            .map(|(i, &park)| {
                if park {
                    MrCondition::Parked
                } else if i % 2 == 0 && dt > 0.5 {
                    MrCondition::Heated { delta_kelvin: dt }
                } else {
                    MrCondition::Healthy
                }
            })
            .collect();
        for v in effective_weight_row(w, &conds, &p) {
            prop_assert!((-1.0..=1.0).contains(&v), "effective weight {v}");
        }
    }

    /// Healthy rows decode to the imprinted weights within DAC precision.
    #[test]
    fn healthy_rows_are_faithful(
        w in proptest::collection::vec(-1.0f64..1.0, 3..10),
    ) {
        let p = EffectiveWeightParams::from_config(&AcceleratorConfig::paper().unwrap());
        let conds = vec![MrCondition::Healthy; w.len()];
        let out = effective_weight_row(&w, &conds, &p);
        let lsb = 1.0 / f64::from(p.dac_steps.max(1));
        for (o, expect) in out.iter().zip(&w) {
            prop_assert!((o - expect).abs() <= lsb + 1e-9, "w {expect} read {o}");
        }
    }

    /// Attack injection is deterministic in (scenario, seed) and never
    /// exceeds the block's ring count.
    #[test]
    fn injection_is_deterministic_and_bounded(
        fraction in 0.01f64..0.15,
        trial in 0u64..4,
        seed in 0u64..1000,
    ) {
        let config = matched_accelerator(ModelKind::Cnn1).unwrap();
        let scenario = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, fraction, trial);
        let a = inject(&scenario, &config, seed).unwrap();
        let b = inject(&scenario, &config, seed).unwrap();
        prop_assert_eq!(&a, &b);
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let cap = config.block(kind).total_mrs() as usize;
            prop_assert!(a.faulty_count(kind) <= cap);
            // Actuation never rounds a fraction up beyond one extra site.
            let expected = ((cap as f64) * fraction).round() as usize;
            prop_assert!(a.faulty_count(kind).abs_diff(expected) <= 1);
        }
    }
}

#[test]
fn corruption_is_idempotent_for_clean_conditions() {
    // Quantization is a projection: applying the clean accelerator twice
    // equals applying it once.
    let bundle = build_model(ModelKind::Cnn1, 9).unwrap();
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let once = corrupt_network(&bundle.network, &mapping, &ConditionMap::new(), &config).unwrap();
    let twice = corrupt_network(&once, &mapping, &ConditionMap::new(), &config).unwrap();
    for (a, b) in once.params().iter().zip(twice.params().iter()) {
        assert_eq!(a.value.as_slice(), b.value.as_slice());
    }
}

#[test]
fn every_model_round_trips_through_its_matched_accelerator() {
    for kind in ModelKind::all() {
        let bundle = build_model(kind, 3).unwrap();
        let config = matched_accelerator(kind).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        // Every parameter must have a home, and reuse-round bookkeeping
        // must be consistent with the used-slot count.
        for (li, spec) in mapping.layer_specs().iter().enumerate() {
            let home = mapping.locate(li, spec.weights - 1).unwrap();
            assert!(home.mr_index < config.block(spec.kind).total_mrs());
        }
        for block in [BlockKind::Conv, BlockKind::Fc] {
            let used = mapping.used_slots(block);
            let cap = config.block(block).total_mrs();
            assert_eq!(
                mapping.rounds(block),
                used.div_ceil(cap).max(u64::from(used > 0))
            );
        }
    }
}

//! Cross-crate property tests: invariants that span the photonics,
//! accelerator and attack layers.

use proptest::prelude::*;
use safelight::attack::{inject, AttackTarget, ScenarioSpec, VectorSpec};
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_onn::{
    corrupt_network, effective_weight_row, AcceleratorConfig, BlockKind, ConditionMap,
    DropResponseModel, MrCondition, WeightMapping,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Effective weights always stay within the accelerator's full scale,
    /// whatever the fault pattern.
    #[test]
    fn effective_weights_stay_in_full_scale(
        w in proptest::collection::vec(-1.0f64..1.0, 3..8),
        park_mask in proptest::collection::vec(any::<bool>(), 3..8),
        dt in 0.0f64..40.0,
    ) {
        let p = DropResponseModel::from_config(&AcceleratorConfig::paper().unwrap());
        let n = w.len().min(park_mask.len());
        let w = &w[..n];
        let conds: Vec<MrCondition> = park_mask[..n]
            .iter()
            .enumerate()
            .map(|(i, &park)| {
                if park {
                    MrCondition::Parked
                } else if i % 2 == 0 && dt > 0.5 {
                    MrCondition::Heated { delta_kelvin: dt }
                } else {
                    MrCondition::Healthy
                }
            })
            .collect();
        for v in effective_weight_row(w, &conds, &p) {
            prop_assert!((-1.0..=1.0).contains(&v), "effective weight {v}");
        }
    }

    /// Healthy rows decode to the imprinted weights within DAC precision.
    #[test]
    fn healthy_rows_are_faithful(
        w in proptest::collection::vec(-1.0f64..1.0, 3..10),
    ) {
        let p = DropResponseModel::from_config(&AcceleratorConfig::paper().unwrap());
        let conds = vec![MrCondition::Healthy; w.len()];
        let out = effective_weight_row(&w, &conds, &p);
        let lsb = 1.0 / f64::from(p.dac_steps.max(1));
        for (o, expect) in out.iter().zip(&w) {
            prop_assert!((o - expect).abs() <= lsb + 1e-9, "w {expect} read {o}");
        }
    }

    /// Attack injection is deterministic in (scenario, seed) and never
    /// exceeds the block's ring count.
    #[test]
    fn injection_is_deterministic_and_bounded(
        fraction in 0.01f64..0.15,
        trial in 0u64..4,
        seed in 0u64..1000,
    ) {
        let config = matched_accelerator(ModelKind::Cnn1).unwrap();
        let scenario = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, fraction, trial);
        let a = inject(&scenario, &config, seed).unwrap();
        let b = inject(&scenario, &config, seed).unwrap();
        prop_assert_eq!(&a, &b);
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let cap = config.block(kind).total_mrs() as usize;
            prop_assert!(a.faulty_count(kind) <= cap);
            // Actuation never rounds a fraction up beyond one extra site.
            let expected = ((cap as f64) * fraction).round() as usize;
            prop_assert!(a.faulty_count(kind).abs_diff(expected) <= 1);
        }
    }
}

/// Builds an arbitrary condition from primitive draws (the vendored
/// proptest shim has no `prop_oneof`). Kelvin/nanometre parameters are
/// dyadic (multiples of 0.25 / 0.125), so heat sums are exact in IEEE
/// arithmetic and algebra properties can assert bitwise equality.
fn condition_from(tag: u64, quarter_kelvin: u64, eighth_nm: u64) -> MrCondition {
    let dk = quarter_kelvin as f64 * 0.25;
    let nm = eighth_nm as f64 * 0.125;
    match tag % 5 {
        0 => MrCondition::Healthy,
        1 => MrCondition::Parked,
        2 => MrCondition::Heated { delta_kelvin: dk },
        3 => MrCondition::Attenuated {
            factor: 0.5,
            delta_kelvin: dk,
        },
        _ => MrCondition::Detuned {
            offset_nm: nm,
            delta_kelvin: dk,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `Parked` dominance: once an actuation trojan parks a ring, no stack
    /// of further vectors — in any order, at any position — can weaken it.
    #[test]
    fn parked_dominates_any_stack_order(
        tags in proptest::collection::vec(0u64..5, 1..6),
        dks in proptest::collection::vec(0u64..120, 1..6),
        position in 0u64..6,
    ) {
        let mut conditions: Vec<MrCondition> = tags
            .iter()
            .zip(&dks)
            .map(|(&t, &q)| condition_from(t, q, q))
            .collect();
        let position = (position as usize) % (conditions.len() + 1);
        conditions.insert(position, MrCondition::Parked);
        let mut map = ConditionMap::new();
        for c in conditions {
            map.stack(BlockKind::Conv, 3, c);
        }
        prop_assert_eq!(map.condition(BlockKind::Conv, 3), MrCondition::Parked);
    }

    /// Spill-over heat accumulation commutes bitwise, whatever trojan state
    /// the heat lands on.
    #[test]
    fn heat_accumulation_commutes(
        tag in 0u64..5,
        base_q in 0u64..120,
        h1_q in 1u64..120,
        h2_q in 1u64..120,
    ) {
        let seed_condition = condition_from(tag, base_q, base_q);
        let heats = [h1_q as f64 * 0.25, h2_q as f64 * 0.25];
        let apply = |order: [usize; 2]| {
            let mut map = ConditionMap::new();
            map.stack(BlockKind::Fc, 9, seed_condition);
            for &i in &order {
                map.add_heat(BlockKind::Fc, 9, heats[i]);
            }
            map.condition(BlockKind::Fc, 9)
        };
        prop_assert_eq!(apply([0, 1]), apply([1, 0]));
    }

    /// Stacking an empty map is the identity, in both directions: a map
    /// absorbs an empty right-hand side unchanged, and an empty map
    /// stacked with any map reproduces it exactly.
    #[test]
    fn stacking_an_empty_map_is_idempotent(
        tags in proptest::collection::vec(0u64..5, 0..8),
        dks in proptest::collection::vec(0u64..120, 0..8),
    ) {
        let mut map = ConditionMap::new();
        for (i, (&t, &q)) in tags.iter().zip(&dks).enumerate() {
            map.stack(BlockKind::Conv, i as u64, condition_from(t, q, q));
            map.stack(BlockKind::Fc, (2 * i) as u64, condition_from(t.wrapping_add(1), q, q));
        }
        let before = map.clone();
        map.stack_map(&ConditionMap::new());
        prop_assert_eq!(&map, &before);
        let mut from_empty = ConditionMap::new();
        from_empty.stack_map(&before);
        prop_assert_eq!(&from_empty, &before);
    }
}

#[test]
fn corruption_is_idempotent_for_clean_conditions() {
    // Quantization is a projection: applying the clean accelerator twice
    // equals applying it once.
    let bundle = build_model(ModelKind::Cnn1, 9).unwrap();
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let once = corrupt_network(&bundle.network, &mapping, &ConditionMap::new(), &config).unwrap();
    let twice = corrupt_network(&once, &mapping, &ConditionMap::new(), &config).unwrap();
    for (a, b) in once.params().iter().zip(twice.params().iter()) {
        assert_eq!(a.value.as_slice(), b.value.as_slice());
    }
}

#[test]
fn every_model_round_trips_through_its_matched_accelerator() {
    for kind in ModelKind::all() {
        let bundle = build_model(kind, 3).unwrap();
        let config = matched_accelerator(kind).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        // Every parameter must have a home, and reuse-round bookkeeping
        // must be consistent with the used-slot count.
        for (li, spec) in mapping.layer_specs().iter().enumerate() {
            let home = mapping.locate(li, spec.weights - 1).unwrap();
            assert!(home.mr_index < config.block(spec.kind).total_mrs());
        }
        for block in [BlockKind::Conv, BlockKind::Fc] {
            let used = mapping.used_slots(block);
            let cap = config.block(block).total_mrs();
            assert_eq!(
                mapping.rounds(block),
                used.div_ceil(cap).max(u64::from(used > 0))
            );
        }
    }
}

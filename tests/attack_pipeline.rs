//! Attack-injection integration: scenarios -> conditions -> corrupted
//! networks, checking the paper's qualitative claims.

use safelight::attack::{inject, AttackTarget, ScenarioSpec, VectorSpec};
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{accuracy, Trainer, TrainerConfig};
use safelight_onn::{corrupt_network, BlockKind, ConditionMap, WeightMapping};

struct Setup {
    network: safelight_neuro::Network,
    mapping: WeightMapping,
    config: safelight_onn::AcceleratorConfig,
    test: safelight_neuro::InMemoryDataset,
    baseline: f64,
}

fn trained_cnn1() -> Setup {
    let data = digits(&SyntheticSpec {
        train: 600,
        test: 200,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 5).unwrap();
    let mut network = bundle.network;
    let cfg = TrainerConfig {
        epochs: 6,
        batch_size: 32,
        learning_rate: 0.02,
        lr_decay_epochs: 3,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let mut clean = corrupt_network(&network, &mapping, &ConditionMap::new(), &config).unwrap();
    let baseline = accuracy(&mut clean, &data.test, 32).unwrap();
    Setup {
        network,
        mapping,
        config,
        test: data.test,
        baseline,
    }
}

fn accuracy_under(setup: &Setup, scenario: &ScenarioSpec, seed: u64) -> f64 {
    let conditions = inject(scenario, &setup.config, seed).unwrap();
    let mut attacked =
        corrupt_network(&setup.network, &setup.mapping, &conditions, &setup.config).unwrap();
    accuracy(&mut attacked, &setup.test, 32).unwrap()
}

#[test]
fn attacks_degrade_monotonically_with_intensity_on_average() {
    let setup = trained_cnn1();
    assert!(
        setup.baseline > 0.85,
        "baseline too low: {}",
        setup.baseline
    );
    // Average over trials to smooth the bank-hit lottery.
    let mean_at = |fraction: f64| -> f64 {
        (0..4)
            .map(|trial| {
                accuracy_under(
                    &setup,
                    &ScenarioSpec::new(
                        VectorSpec::Actuation,
                        AttackTarget::FcBlock,
                        fraction,
                        trial,
                    ),
                    11,
                )
            })
            .sum::<f64>()
            / 4.0
    };
    let at_1 = mean_at(0.01);
    let at_10 = mean_at(0.10);
    assert!(
        at_1 >= at_10 - 0.02,
        "1% ({at_1:.3}) should be gentler than 10% ({at_10:.3})"
    );
    assert!(at_10 < setup.baseline, "10% actuation had no effect");
}

#[test]
fn conditions_respect_target_blocks() {
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let conv_only = inject(
        &ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0),
        &config,
        3,
    )
    .unwrap();
    assert!(conv_only.faulty_count(BlockKind::Conv) > 0);
    assert_eq!(conv_only.faulty_count(BlockKind::Fc), 0);
}

#[test]
fn hotspot_attacks_touch_more_rings_than_actuation() {
    // Hotspots are bank-granular and spill into neighbours, so for the same
    // nominal fraction they touch at least as many rings (insight 4's
    // mechanism).
    let config = matched_accelerator(ModelKind::Cnn1).unwrap();
    let mk = |vector| ScenarioSpec::new(vector, AttackTarget::FcBlock, 0.05, 2);
    let actuation = inject(&mk(VectorSpec::Actuation), &config, 9).unwrap();
    let hotspot = inject(&mk(VectorSpec::Hotspot), &config, 9).unwrap();
    assert!(
        hotspot.faulty_count(BlockKind::Fc) >= actuation.faulty_count(BlockKind::Fc),
        "hotspot {} < actuation {}",
        hotspot.faulty_count(BlockKind::Fc),
        actuation.faulty_count(BlockKind::Fc)
    );
}

#[test]
fn cnn1_is_more_sensitive_to_fc_than_conv_attacks() {
    // Paper SS IV: "in the MNIST model, attacking the FC block leads to more
    // significant accuracy drops" (CNN_1 is FC-dominated).
    let setup = trained_cnn1();
    let mean = |target: AttackTarget| -> f64 {
        (0..4)
            .map(|trial| {
                accuracy_under(
                    &setup,
                    &ScenarioSpec::new(VectorSpec::Actuation, target, 0.10, trial),
                    13,
                )
            })
            .sum::<f64>()
            / 4.0
    };
    let conv = mean(AttackTarget::ConvBlock);
    let fc = mean(AttackTarget::FcBlock);
    assert!(
        fc <= conv + 0.02,
        "FC attacks ({fc:.3}) should hurt at least as much as CONV ({conv:.3})"
    );
}

//! End-to-end tests of the runtime trojan-detection subsystem: telemetry →
//! detectors → ROC/latency evaluation, including the acceptance criteria
//! of the detection pipeline — full extended-grid coverage, byte-identical
//! reports across thread counts, and TPR > 0.9 at FPR < 0.05 on the 10 %
//! actuation scenario.

use safelight::attack::extended_scenario_grid;
use safelight::eval::{detection_roc_csv, detection_summary_csv, run_detection, DetectionOptions};
use safelight::prelude::*;
use safelight_neuro::Network;
use safelight_onn::{AnalyticBackend, WeightMapping};

fn setup() -> (Network, WeightMapping, AcceleratorConfig) {
    // Detection watches the sensors, not the classification accuracy, so
    // the pipeline tests run on an untrained (but fully mapped) model, on
    // the scaled experiment profile (the paper-scale FC block's per-bank
    // thermal solves would dominate a debug-mode test run for no extra
    // coverage — the same trade the susceptibility tests make).
    let bundle = build_model(ModelKind::Cnn1, 7).unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    (bundle.network, mapping, config)
}

fn quick_opts() -> DetectionOptions {
    DetectionOptions {
        frames: 12,
        onset: 4,
        calibration_frames: 24,
        clean_runs: 24,
        attack_runs: 2,
        threshold_points: 8,
        ..DetectionOptions::default()
    }
}

#[test]
fn roc_csv_covers_the_full_extended_grid_and_is_thread_independent() {
    let (network, mapping, config) = setup();
    // Every vector stack × selection × target × fraction of the extended
    // threat model (one trial per cell keeps the test fast; the cells are
    // what coverage is about).
    let scenarios = extended_scenario_grid(&[0.01, 0.05, 0.10], 1);
    let backend = AnalyticBackend::new(&config);
    let run = |threads: usize| {
        run_detection(
            &network,
            &mapping,
            &backend,
            &scenarios,
            &default_detectors(),
            &quick_opts(),
            2025,
            threads,
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    // Byte-identical CSVs regardless of the worker-thread count.
    assert_eq!(detection_roc_csv(&serial), detection_roc_csv(&parallel));
    assert_eq!(
        detection_summary_csv(&serial),
        detection_summary_csv(&parallel)
    );
    // The ROC table names every cell of the grid for every detector.
    let csv = detection_roc_csv(&serial);
    for spec in &scenarios {
        for detector in &serial.detectors {
            let row_prefix = format!(
                "{},{},{},{},{},",
                detector,
                spec.vector_label(),
                spec.selection,
                spec.target,
                spec.fraction
            );
            assert!(
                csv.lines().any(|l| l.starts_with(&row_prefix)),
                "no ROC rows for `{row_prefix}`"
            );
        }
    }
}

#[test]
fn ten_percent_actuation_is_detected_above_the_bar() {
    let (network, mapping, config) = setup();
    // The acceptance scenario: 10 % actuation, uniform placement. Several
    // trials × noise seeds populate the TPR estimate.
    let scenarios: Vec<ScenarioSpec> = (0..4)
        .map(|trial| ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, trial))
        .collect();
    let opts = DetectionOptions {
        attack_runs: 6,
        clean_runs: 40,
        ..quick_opts()
    };
    let report = run_detection(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &scenarios,
        &default_detectors(),
        &opts,
        2025,
        safelight_neuro::parallel::configured_threads(),
    )
    .unwrap();
    let best = report.best_for(&scenarios[0]).expect("cell evaluated");
    let operating = report
        .operating
        .iter()
        .find(|o| o.detector == best.detector)
        .unwrap();
    assert!(
        best.tpr > 0.9,
        "best TPR {} (detector {})",
        best.tpr,
        best.detector
    );
    assert!(operating.fpr < 0.05, "operating FPR {}", operating.fpr);
    // A parked ring is visible in the very first attacked frame.
    assert!(
        best.mean_latency_frames <= 2.0,
        "latency {} frames",
        best.mean_latency_frames
    );
}

#[test]
fn telemetry_frames_round_trip_through_their_csv_form() {
    use safelight_onn::{SentinelPlan, TapConfig, TelemetryFrame, TelemetryProbe};
    let (network, mapping, config) = setup();
    let sentinels = SentinelPlan::new(&mapping, &config, 16, 0.7);
    let conditions = safelight::attack::inject(
        &ScenarioSpec::stacked(stacked_pair(), AttackTarget::Both, 0.05, 0),
        &config,
        9,
    )
    .unwrap();
    let probe = TelemetryProbe::new(
        &network,
        &mapping,
        &conditions,
        &config,
        &sentinels,
        TapConfig::default(),
    )
    .unwrap();
    for batch in 0..3 {
        let frame = probe.frame(batch, 11);
        let back = TelemetryFrame::from_csv(&frame.to_csv()).unwrap();
        assert_eq!(back, frame);
    }
}

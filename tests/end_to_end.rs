//! End-to-end integration: synthetic data -> training -> accelerator
//! mapping -> clean optical execution, across all three models.

use safelight::models::{build_model, dataset_kind_for, matched_accelerator, ModelKind};
use safelight_datasets::{generate, SyntheticSpec};
use safelight_neuro::{accuracy, Dataset, Trainer, TrainerConfig};
use safelight_onn::{corrupt_network, BlockKind, ConditionMap, WeightMapping};

fn tiny_spec() -> SyntheticSpec {
    SyntheticSpec {
        train: 120,
        test: 60,
        ..SyntheticSpec::default()
    }
}

#[test]
fn every_model_trains_and_maps_cleanly() {
    for kind in ModelKind::all() {
        let data = generate(dataset_kind_for(kind), &tiny_spec()).unwrap();
        let bundle = build_model(kind, 5).unwrap();
        let mut network = bundle.network;

        let cfg = TrainerConfig {
            epochs: 2,
            batch_size: 16,
            learning_rate: 0.02,
            ..TrainerConfig::default()
        };
        Trainer::new(cfg).fit(&mut network, &data.train).unwrap();

        let config = matched_accelerator(kind).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        let mut on_accelerator =
            corrupt_network(&network, &mapping, &ConditionMap::new(), &config).unwrap();

        // The quantized optical execution must stay close to the software
        // model: compare accuracies on the test split.
        let sw = accuracy(&mut network, &data.test, 16).unwrap();
        let hw = accuracy(&mut on_accelerator, &data.test, 16).unwrap();
        assert!(
            (sw - hw).abs() < 0.10,
            "{kind}: software {sw:.3} vs accelerator {hw:.3}"
        );
    }
}

#[test]
fn matched_accelerators_preserve_paper_structure() {
    // The structural ratios that drive susceptibility (DESIGN.md SS4).
    let checks = [
        // (model, conv rounds range, fc utilization range)
        (ModelKind::Cnn1, 1..=1, 0.01..=0.06),
        (ModelKind::ResNet18s, 100..=120, 0.001..=0.01),
        (ModelKind::Vgg16s, 80..=100, 0.98..=1.0),
    ];
    for (kind, conv_rounds, fc_util) in checks {
        let bundle = build_model(kind, 1).unwrap();
        let config = matched_accelerator(kind).unwrap();
        let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
        assert!(
            conv_rounds.contains(&mapping.rounds(BlockKind::Conv)),
            "{kind}: CONV rounds {}",
            mapping.rounds(BlockKind::Conv)
        );
        assert!(
            fc_util.contains(&mapping.utilization(BlockKind::Fc)),
            "{kind}: FC utilization {}",
            mapping.utilization(BlockKind::Fc)
        );
        // VGG must also reuse the FC block heavily (paper: ~89 rounds).
        if kind == ModelKind::Vgg16s {
            let r = mapping.rounds(BlockKind::Fc);
            assert!((80..=100).contains(&r), "VGG FC rounds {r}");
        }
    }
}

#[test]
fn datasets_have_consistent_shapes_for_their_models() {
    let expected = [
        (ModelKind::Cnn1, vec![1, 28, 28]),
        (ModelKind::ResNet18s, vec![3, 32, 32]),
        (ModelKind::Vgg16s, vec![3, 64, 64]),
    ];
    for (kind, shape) in expected {
        let data = generate(dataset_kind_for(kind), &tiny_spec()).unwrap();
        assert_eq!(data.train.image_shape(), shape, "{kind}");
        assert_eq!(data.train.classes(), 10);
    }
}

//! Mitigation integration: variant training -> robustness evaluation ->
//! recovery, checking the paper's SS V / SS VI claims qualitatively.

use safelight::attack::{AttackTarget, ScenarioSpec, VectorSpec};
use safelight::defense::{fig8_variants, train_variant, TrainingRecipe, VariantKind};
use safelight::eval::{run_mitigation, run_recovery};
use safelight::models::{build_model, matched_accelerator, ModelKind};
use safelight_datasets::{digits, SyntheticSpec};
use safelight_onn::{AnalyticBackend, WeightMapping};

#[test]
fn fig8_axis_matches_paper() {
    let labels: Vec<String> = fig8_variants().iter().map(VariantKind::label).collect();
    assert_eq!(labels[0], "Original");
    assert_eq!(labels[1], "L2_reg");
    assert_eq!(labels.len(), 11);
}

#[test]
fn noise_aware_variant_is_more_robust_than_original() {
    let kind = ModelKind::Cnn1;
    let data = digits(&SyntheticSpec {
        train: 600,
        test: 200,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let recipe = TrainingRecipe {
        epochs: 6,
        ..TrainingRecipe::for_model(kind)
    };
    let config = matched_accelerator(kind).unwrap();
    let bundle = build_model(kind, recipe.seed).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();

    let original = train_variant(kind, VariantKind::Original, &data, &recipe, None).unwrap();
    let robust = train_variant(kind, VariantKind::L2Noise(3), &data, &recipe, None).unwrap();

    // Actuation attacks zero individual weights; noise-aware training is
    // exactly the mitigation the paper proposes for this corruption.
    let scenarios: Vec<ScenarioSpec> = (0..6)
        .map(|trial| ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, trial))
        .collect();
    let report = run_mitigation(
        &[
            (VariantKind::Original, original),
            (VariantKind::L2Noise(3), robust),
        ],
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &scenarios,
        21,
        2,
    )
    .unwrap();
    let orig = &report.outcomes[0];
    let robu = &report.outcomes[1];
    assert!(
        robu.stats.median >= orig.stats.median - 0.02,
        "robust median {:.3} should not trail original {:.3}",
        robu.stats.median,
        orig.stats.median
    );
}

#[test]
fn recovery_report_is_internally_consistent() {
    let kind = ModelKind::Cnn1;
    let data = digits(&SyntheticSpec {
        train: 300,
        test: 100,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let recipe = TrainingRecipe {
        epochs: 4,
        ..TrainingRecipe::for_model(kind)
    };
    let config = matched_accelerator(kind).unwrap();
    let bundle = build_model(kind, recipe.seed).unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    let original = train_variant(kind, VariantKind::Original, &data, &recipe, None).unwrap();
    let robust = train_variant(kind, VariantKind::L2Noise(3), &data, &recipe, None).unwrap();

    let report = run_recovery(
        &original,
        &robust,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &[0.01, 0.05],
        3,
        31,
        2,
    )
    .unwrap();
    assert_eq!(report.intervals.len(), 4); // 2 vectors x 2 fractions
    for i in &report.intervals {
        assert!(i.original.0 <= i.original.1 && i.original.1 <= i.original.2);
        assert!(i.robust.0 <= i.robust.1 && i.robust.1 <= i.robust.2);
        // Recovery metrics are differences of accuracies, hence bounded.
        assert!(i.worst_case_recovery().abs() <= 1.0);
        assert!(i.mean_recovery().abs() <= 1.0);
    }
}

#[test]
fn variant_cache_reuses_trained_models() {
    let kind = ModelKind::Cnn1;
    let dir = std::env::temp_dir().join(format!("safelight-it-cache-{}", std::process::id()));
    let data = digits(&SyntheticSpec {
        train: 200,
        test: 50,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let recipe = TrainingRecipe {
        epochs: 2,
        ..TrainingRecipe::for_model(kind)
    };
    let first = std::time::Instant::now();
    let a = train_variant(kind, VariantKind::L2Noise(2), &data, &recipe, Some(&dir)).unwrap();
    let t_first = first.elapsed();
    let second = std::time::Instant::now();
    let b = train_variant(kind, VariantKind::L2Noise(2), &data, &recipe, Some(&dir)).unwrap();
    let t_second = second.elapsed();
    for (pa, pb) in a.params().iter().zip(b.params().iter()) {
        assert_eq!(pa.value.as_slice(), pb.value.as_slice());
    }
    assert!(t_second < t_first, "cache load not faster than training");
    std::fs::remove_dir_all(dir).ok();
}

//! End-to-end tests of the secure serving runtime: fleet + scheduler +
//! inline detection + closed-loop response, including the serving
//! acceptance criteria — on a mid-stream 10 % actuation compromise the
//! runtime detects, remaps/fails over and recovers ≥ 95 % of clean
//! accuracy on post-recovery batches while the no-response baseline stays
//! degraded, and the serving CSV is byte-identical across worker-thread
//! counts.

use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{Network, Trainer, TrainerConfig};
use safelight_onn::{AnalyticBackend, WeightMapping};
use safelight_serve::eval::{run_serving, ServingOptions};
use safelight_serve::report::serving_csv;
use safelight_serve::ArrivalModel;

/// A trained-enough CNN_1 on the scaled accelerator profile (the same
/// trade the susceptibility tests make: debug-mode full-scale solves buy
/// no extra coverage).
fn trained_setup() -> (
    Network,
    WeightMapping,
    AcceleratorConfig,
    safelight_datasets::SplitDataset,
) {
    let data = digits(&SyntheticSpec {
        train: 120,
        test: 60,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    let cfg = TrainerConfig {
        epochs: 3,
        batch_size: 20,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    (network, mapping, config, data)
}

fn quick_opts() -> ServingOptions {
    ServingOptions {
        batch_size: 6,
        batches: 18,
        onset_batch: 6,
        calibration_frames: 24,
        clean_runs: 16,
        ..ServingOptions::default()
    }
}

#[test]
fn closed_loop_recovers_while_the_baseline_stays_degraded() {
    let (network, mapping, config, data) = trained_setup();
    // The acceptance scenario: a 10 % actuation compromise with worst-case
    // (magnitude-targeted) placement landing mid-stream on one member of a
    // two-member fleet.
    let scenario = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0)
        .with_selection(Selection::Targeted);
    let report = run_serving(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        std::slice::from_ref(&scenario),
        &default_detectors(),
        &quick_opts(),
        2025,
        safelight_neuro::parallel::configured_threads(),
    )
    .unwrap();
    let row = report.row(&scenario).expect("scenario evaluated");
    // Detected promptly and acted (remap and/or failover — whichever the
    // spare pool allowed).
    assert!(
        row.detection_latency_batches.is_finite(),
        "compromise went undetected: {row:?}"
    );
    assert!(
        row.action.contains("remap") || row.action.contains("failover"),
        "no remediation in `{}`",
        row.action
    );
    assert!(row.recovery_latency_batches.is_finite());
    // Post-recovery batches are back at ≥ 95 % of the clean fleet's
    // accuracy…
    assert!(
        row.recovered_accuracy >= 0.95 * report.clean_accuracy,
        "recovered {} vs clean {}",
        row.recovered_accuracy,
        report.clean_accuracy
    );
    // …while the no-response baseline keeps mis-serving the compromised
    // member's share of traffic.
    assert!(
        row.baseline_post_accuracy < report.clean_accuracy - 0.02,
        "baseline not degraded: {} vs clean {}",
        row.baseline_post_accuracy,
        report.clean_accuracy
    );
    assert!(
        row.recovered_accuracy > row.baseline_post_accuracy,
        "closed loop ({}) not better than baseline ({})",
        row.recovered_accuracy,
        row.baseline_post_accuracy
    );
    // The degraded window is bounded: pre-onset traffic was clean and
    // availability reflects only the onset-to-recovery window.
    assert!(row.pre_onset_accuracy >= report.clean_accuracy - 0.05);
    assert!(row.availability < 1.0);
    assert!(row.availability > 0.5);
}

#[test]
fn serving_csv_is_byte_identical_across_thread_counts() {
    let (network, mapping, config, data) = trained_setup();
    let scenarios = vec![
        ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0),
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.10, 0),
        ScenarioSpec::new(VectorSpec::laser_default(), AttackTarget::FcBlock, 0.05, 1)
            .with_selection(Selection::Clustered),
    ];
    let run = |threads: usize| {
        run_serving(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            &default_detectors(),
            &quick_opts(),
            7,
            threads,
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serving_csv(&serial), serving_csv(&parallel));
    assert_eq!(
        safelight_serve::report::serving_json(&serial),
        safelight_serve::report::serving_json(&parallel)
    );
    // Every scenario produced a row, in input order.
    assert_eq!(serial.rows.len(), scenarios.len());
    for (row, spec) in serial.rows.iter().zip(&scenarios) {
        assert_eq!(&row.scenario, spec);
    }
}

#[test]
fn serving_artifacts_are_byte_identical_at_every_arrival_rate() {
    let (network, mapping, config, data) = trained_setup();
    let scenarios = vec![
        ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0),
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.10, 0),
    ];
    // The arrival grid: an under-loaded Poisson stream, an overloaded one
    // (sheds through the bounded queue) and a bursty stream.
    for arrival in [
        ArrivalModel::Poisson { rate: 4.0 },
        ArrivalModel::Poisson { rate: 30.0 },
        ArrivalModel::Bursty {
            rate: 12.0,
            burst: 4,
        },
    ] {
        let opts = ServingOptions {
            arrival,
            ..quick_opts()
        };
        let run = |threads: usize| {
            run_serving(
                &network,
                &mapping,
                &AnalyticBackend::new(&config),
                &data.test,
                &scenarios,
                &default_detectors(),
                &opts,
                7,
                threads,
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(4);
        assert_eq!(
            serving_csv(&serial),
            serving_csv(&parallel),
            "CSV diverged across thread counts at arrival {arrival}"
        );
        assert_eq!(
            safelight_serve::report::serving_json(&serial),
            safelight_serve::report::serving_json(&parallel),
            "JSON diverged across thread counts at arrival {arrival}"
        );
    }
}

#[test]
fn finite_rate_serving_reports_latency_percentiles_and_shedding() {
    let (network, mapping, config, data) = trained_setup();
    let scenario = [ScenarioSpec::new(
        VectorSpec::Actuation,
        AttackTarget::Both,
        0.10,
        0,
    )];
    let run = |arrival| {
        run_serving(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenario,
            &default_detectors(),
            &ServingOptions {
                arrival,
                ..quick_opts()
            },
            2025,
            safelight_neuro::parallel::configured_threads(),
        )
        .unwrap()
    };
    // Lightly loaded: a 2-member fleet of 6-request batches drains up to
    // 12 requests per tick, so at rate 6 nothing sheds and the queue
    // stays shallow.
    let light = run(ArrivalModel::Poisson { rate: 6.0 });
    let row = &light.rows[0];
    for p in [row.p50_latency, row.p99_latency, row.p999_latency] {
        assert!(p.is_finite() && p >= 1.0, "degenerate percentile {p}");
    }
    assert!(row.p50_latency <= row.p99_latency);
    assert!(row.p99_latency <= row.p999_latency);
    assert!(row.throughput > 0.0);
    assert_eq!(row.shed_rate, 0.0, "under-loaded stream shed requests");
    // Overloaded: arrivals outpace the drain by 4× and overflow the
    // default bounded queue, so admission sheds and the served tail
    // saturates at the queue depth.
    let heavy = run(ArrivalModel::Poisson { rate: 48.0 });
    let row = &heavy.rows[0];
    assert!(row.shed_rate > 0.0, "overloaded stream never shed");
    assert!(row.shed_rate < 1.0);
    assert!(row.p99_latency >= light.rows[0].p99_latency);
}

#[test]
fn degenerate_serving_options_are_rejected() {
    let (network, mapping, config, data) = trained_setup();
    let scenario = [ScenarioSpec::new(
        VectorSpec::Actuation,
        AttackTarget::ConvBlock,
        0.05,
        0,
    )];
    for opts in [
        ServingOptions {
            batches: 0,
            ..quick_opts()
        },
        ServingOptions {
            onset_batch: 18,
            ..quick_opts()
        },
        ServingOptions {
            fleet_size: 0,
            ..quick_opts()
        },
        ServingOptions {
            arrival: ArrivalModel::Poisson { rate: 0.0 },
            ..quick_opts()
        },
    ] {
        assert!(run_serving(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenario,
            &default_detectors(),
            &opts,
            1,
            1,
        )
        .is_err());
    }
}

//! End-to-end tests of the chaos evaluation: benign hardware faults,
//! trojans and fault+trojan overlap against the fault-tolerant serving
//! runtime — including the robustness acceptance criteria: the
//! spurious-quarantine rate on fault-only cases stays ≤ 5 % while the
//! trojan TPR on a 10 % targeted actuation stays 1.0, a crashed member
//! recovers to ≥ 95 % of clean accuracy within a bounded number of
//! batches, and the chaos CSV is byte-identical across worker-thread
//! counts.

use safelight::fault::{FaultSpec, FaultVector};
use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{Network, Trainer, TrainerConfig};
use safelight_onn::{AnalyticBackend, SensorChannel, WeightMapping};
use safelight_serve::chaos::{chaos_grid, run_chaos, ChaosCase};
use safelight_serve::eval::ServingOptions;
use safelight_serve::report::{chaos_csv, chaos_json};

/// A trained-enough CNN_1 on the scaled accelerator profile (the same
/// trade the serving tests make: debug-mode full-scale solves buy no
/// extra coverage).
fn trained_setup() -> (
    Network,
    WeightMapping,
    AcceleratorConfig,
    safelight_datasets::SplitDataset,
) {
    let data = digits(&SyntheticSpec {
        train: 120,
        test: 60,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    let cfg = TrainerConfig {
        epochs: 3,
        batch_size: 20,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    (network, mapping, config, data)
}

fn quick_opts() -> ServingOptions {
    ServingOptions {
        batch_size: 6,
        batches: 18,
        onset_batch: 6,
        calibration_frames: 24,
        clean_runs: 16,
        ..ServingOptions::default()
    }
}

#[test]
fn faults_stay_maintenance_while_trojans_stay_detected() {
    let (network, mapping, config, data) = trained_setup();
    let cases = chaos_grid(quick_opts().onset_batch);
    let report = run_chaos(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &cases,
        &default_detectors(),
        &quick_opts(),
        2025,
        safelight_neuro::parallel::configured_threads(),
    )
    .unwrap();
    assert_eq!(report.rows.len(), cases.len());

    // Acceptance: benign faults spend no spares and fail no members over.
    assert!(
        report.spurious_quarantine_rate <= 0.05,
        "spurious-quarantine rate {} > 5%: {:#?}",
        report.spurious_quarantine_rate,
        report
            .rows
            .iter()
            .filter(|r| r.spurious_quarantine)
            .collect::<Vec<_>>()
    );
    // Every fault-only sensor case raises a maintenance flag instead.
    for row in report.rows_of_kind("fault") {
        if row.fault.starts_with("crash") {
            continue;
        }
        assert!(
            row.maintenance_events > 0,
            "fault `{}` raised no maintenance flag: {row:?}",
            row.fault
        );
    }

    // Acceptance: the discrimination logic keeps the 10 % targeted
    // actuation TPR at 1.0 (and the whole trojan-only set detected).
    assert_eq!(
        report.trojan_tpr,
        1.0,
        "trojan rows slipped past discrimination: {:#?}",
        report
            .rows_of_kind("trojan")
            .filter(|r| !r.trojan_detected)
            .collect::<Vec<_>>()
    );
    let targeted = report
        .rows_of_kind("trojan")
        .find(|r| r.scenario.contains("targeted") && r.scenario.contains("0.1"))
        .expect("the acceptance scenario is in the grid");
    assert!(targeted.trojan_detected);
    // Overlapping a benign fault on the same member does not mask the
    // attack.
    assert_eq!(report.overlap_missed_rate, 0.0);

    // Acceptance: crash recovery is bounded and lands back at ≥ 95 % of
    // clean accuracy.
    let crash = report
        .rows_of_kind("fault")
        .find(|r| r.fault.starts_with("crash"))
        .expect("the crash case is in the grid");
    assert!(
        crash.crash_recovery_batches.is_finite()
            && crash.crash_recovery_batches <= 2.0 * quick_opts().restart_batches as f64 + 2.0,
        "crash recovery unbounded: {crash:?}"
    );
    assert!(
        crash.post_accuracy >= 0.95 * report.clean_accuracy,
        "post-crash accuracy {} vs clean {}",
        crash.post_accuracy,
        report.clean_accuracy
    );
    assert!(!crash.spurious_quarantine);
}

#[test]
fn chaos_csv_is_byte_identical_across_thread_counts() {
    let (network, mapping, config, data) = trained_setup();
    // A small mixed slice of the grid keeps this determinism check cheap:
    // one sensor fault, one crash, one trojan, one overlap.
    let onset = quick_opts().onset_batch;
    let cases = vec![
        ChaosCase::fault(FaultSpec::new(
            FaultVector::DeadSensor {
                channel: SensorChannel::DropCurrent,
            },
            AttackTarget::FcBlock,
            0.5,
            onset,
        )),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::Crash,
            AttackTarget::Both,
            0.0,
            onset,
        )),
        ChaosCase::trojan(ScenarioSpec::new(
            VectorSpec::Actuation,
            AttackTarget::Both,
            0.10,
            0,
        )),
        ChaosCase::overlap(
            FaultSpec::new(
                FaultVector::RailGlitch {
                    depth: 0.3,
                    duration: 2,
                },
                AttackTarget::Both,
                1.0,
                onset,
            ),
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0),
        ),
    ];
    let run = |threads: usize| {
        run_chaos(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &cases,
            &default_detectors(),
            &quick_opts(),
            7,
            threads,
        )
        .unwrap()
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(chaos_csv(&serial), chaos_csv(&parallel));
    assert_eq!(chaos_json(&serial), chaos_json(&parallel));
    // Every case produced a row, in input order, tagged with its kind.
    assert_eq!(serial.rows.len(), cases.len());
    for (row, case) in serial.rows.iter().zip(&cases) {
        assert_eq!(row.kind, case.kind());
    }
}

#[test]
fn degenerate_chaos_options_are_rejected() {
    let (network, mapping, config, data) = trained_setup();
    let cases = [ChaosCase::trojan(ScenarioSpec::new(
        VectorSpec::Actuation,
        AttackTarget::ConvBlock,
        0.05,
        0,
    ))];
    for opts in [
        ServingOptions {
            batches: 0,
            ..quick_opts()
        },
        ServingOptions {
            onset_batch: 18,
            ..quick_opts()
        },
        ServingOptions {
            fleet_size: 0,
            ..quick_opts()
        },
    ] {
        assert!(run_chaos(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &cases,
            &default_detectors(),
            &opts,
            1,
            1,
        )
        .is_err());
    }
    // An invalid fault spec (zero fraction on a sensor fault) is rejected
    // too, not silently skipped.
    let bad = [ChaosCase::fault(FaultSpec::new(
        FaultVector::DeadSensor {
            channel: SensorChannel::DropCurrent,
        },
        AttackTarget::FcBlock,
        0.0,
        6,
    ))];
    assert!(run_chaos(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &bad,
        &default_detectors(),
        &quick_opts(),
        1,
        1,
    )
    .is_err());
}

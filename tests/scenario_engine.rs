//! Integration and property tests for the composable attack-scenario
//! engine: new vectors, site-selection strategies and stacked scenarios
//! must stay deterministic (scenario-ordered, thread-count independent)
//! and must corrupt only the block(s) they target.

use proptest::prelude::*;
use safelight::attack::{
    extended_scenario_grid, inject, inject_full, AttackTarget, RingSalience, ScenarioSpec,
    Selection, VectorSpec,
};
use safelight::eval::{run_susceptibility, susceptibility_csv};
use safelight::models::{build_model, ModelKind};
use safelight_datasets::{digits, SplitDataset, SyntheticSpec};
use safelight_neuro::{Network, Trainer, TrainerConfig};
use safelight_onn::{AcceleratorConfig, AnalyticBackend, BlockKind, WeightMapping};

fn config() -> AcceleratorConfig {
    AcceleratorConfig::scaled_experiment().unwrap()
}

/// All four single vectors, in grid order.
fn all_vectors() -> [VectorSpec; 4] {
    [
        VectorSpec::Actuation,
        VectorSpec::Hotspot,
        VectorSpec::laser_default(),
        VectorSpec::trim_default(),
    ]
}

/// A lightly trained CNN_1 with its mapping and salience on the scaled
/// accelerator (shared across the sweep tests).
fn trained_setup() -> (Network, WeightMapping, AcceleratorConfig, SplitDataset) {
    let data = digits(&SyntheticSpec {
        train: 120,
        test: 60,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    Trainer::new(TrainerConfig {
        epochs: 2,
        batch_size: 20,
        ..TrainerConfig::default()
    })
    .fit(&mut network, &data.train)
    .unwrap();
    let config = config();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    (network, mapping, config, data)
}

#[test]
fn every_vector_corrupts_only_its_targeted_block() {
    let config = config();
    for vector in all_vectors() {
        for (target, hit, spared) in [
            (
                AttackTarget::ConvBlock,
                BlockKind::Conv,
                Some(BlockKind::Fc),
            ),
            (AttackTarget::FcBlock, BlockKind::Fc, Some(BlockKind::Conv)),
            (AttackTarget::Both, BlockKind::Conv, None),
        ] {
            let spec = ScenarioSpec::new(vector, target, 0.05, 0);
            let map = inject(&spec, &config, 7).unwrap();
            assert!(
                map.faulty_count(hit) > 0,
                "{vector} on {target} left {hit:?} clean"
            );
            if let Some(spared) = spared {
                assert_eq!(
                    map.faulty_count(spared),
                    0,
                    "{vector} on {target} leaked into {spared:?}"
                );
            }
            // Sites stay inside the block's ring range.
            for kind in [BlockKind::Conv, BlockKind::Fc] {
                let cap = config.block(kind).total_mrs();
                for (mr, _) in map.iter(kind) {
                    assert!(mr < cap, "{vector}: ring {mr} out of range");
                }
            }
        }
    }
}

#[test]
fn stacked_scenarios_corrupt_only_their_targeted_block() {
    let config = config();
    let stacked = ScenarioSpec::stacked(
        vec![VectorSpec::Actuation, VectorSpec::Hotspot],
        AttackTarget::ConvBlock,
        0.05,
        0,
    );
    let map = inject(&stacked, &config, 7).unwrap();
    assert!(map.faulty_count(BlockKind::Conv) > 0);
    assert_eq!(map.faulty_count(BlockKind::Fc), 0);
}

#[test]
fn susceptibility_csv_is_byte_identical_across_thread_counts() {
    let (network, mapping, config, data) = trained_setup();
    // A grid that exercises everything at once: all four vectors, a stack,
    // and all three placement strategies (targeted included).
    let scenarios = extended_scenario_grid(&[0.05], 1);
    let sweep = |threads: usize| {
        run_susceptibility(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &scenarios,
            7,
            threads,
        )
        .unwrap()
    };
    let serial = sweep(1);
    let pooled = sweep(3);
    assert_eq!(
        susceptibility_csv(&serial),
        susceptibility_csv(&pooled),
        "sweep output depends on thread count"
    );
    // And the report itself matches field-for-field.
    assert_eq!(serial, pooled);
}

#[test]
fn targeted_selection_is_deterministic_and_orderly() {
    let (network, mapping, config, _) = trained_setup();
    let salience = RingSalience::from_network(&network, &mapping, &config).unwrap();
    let spec = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.05, 0)
        .with_selection(Selection::Targeted);
    let a = inject_full(&spec, &config, Some(&salience), 7).unwrap();
    let b = inject_full(&spec, &config, Some(&salience), 7).unwrap();
    assert_eq!(a, b, "targeted injection must be reproducible");
    // Targeted selection ignores the trial stream entirely: the worst-case
    // adversary's sites depend only on the weights.
    let other_trial = ScenarioSpec { trial: 3, ..spec };
    let c = inject_full(&other_trial, &config, Some(&salience), 7).unwrap();
    assert_eq!(a.conditions, c.conditions);
}

#[test]
fn selection_strategies_pick_distinct_site_sets() {
    let (network, mapping, config, _) = trained_setup();
    let salience = RingSalience::from_network(&network, &mapping, &config).unwrap();
    let inject_with = |selection| {
        let spec = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::ConvBlock, 0.05, 0)
            .with_selection(selection);
        inject_full(&spec, &config, Some(&salience), 7)
            .unwrap()
            .conditions
    };
    let uniform = inject_with(Selection::Uniform);
    let clustered = inject_with(Selection::Clustered);
    let targeted = inject_with(Selection::Targeted);
    // Same site count per strategy, different placements.
    assert_eq!(
        uniform.faulty_count(BlockKind::Conv),
        clustered.faulty_count(BlockKind::Conv)
    );
    assert_eq!(
        uniform.faulty_count(BlockKind::Conv),
        targeted.faulty_count(BlockKind::Conv)
    );
    assert_ne!(uniform, clustered);
    assert_ne!(uniform, targeted);
    // Clustered sites form one contiguous run.
    let mut sites: Vec<u64> = clustered.iter(BlockKind::Conv).map(|(mr, _)| mr).collect();
    sites.sort_unstable();
    for pair in sites.windows(2) {
        assert_eq!(pair[1], pair[0] + 1, "clustered sites not contiguous");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any single-vector or stacked scenario under any selection strategy
    /// is deterministic in (scenario, seed) and never leaks outside its
    /// targeted block(s). (Hotspot stays out of this hot loop: its thermal
    /// solves are covered by the unit tests above.)
    #[test]
    fn injection_is_deterministic_and_scoped(
        vector_index in 0usize..3,
        stack in any::<bool>(),
        selection_index in 0usize..3,
        target_index in 0usize..3,
        fraction in 0.01f64..0.12,
        trial in 0u64..4,
        seed in 0u64..500,
    ) {
        let config = config();
        let vectors = [
            VectorSpec::Actuation,
            VectorSpec::laser_default(),
            VectorSpec::trim_default(),
        ];
        let stack = if stack {
            vec![vectors[vector_index], vectors[(vector_index + 1) % 3]]
        } else {
            vec![vectors[vector_index]]
        };
        let target = [AttackTarget::ConvBlock, AttackTarget::FcBlock, AttackTarget::Both]
            [target_index];
        let selection = Selection::all()[selection_index];
        let spec = ScenarioSpec {
            vectors: stack,
            selection,
            target,
            fraction,
            trial,
        };
        // Targeted selection needs a salience map; an untrained model's
        // weights are fine for the site-scoping property.
        let salience = if selection == Selection::Targeted {
            let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
            let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
            Some(RingSalience::from_network(&bundle.network, &mapping, &config).unwrap())
        } else {
            None
        };
        let a = inject_full(&spec, &config, salience.as_ref(), seed).unwrap();
        let b = inject_full(&spec, &config, salience.as_ref(), seed).unwrap();
        prop_assert_eq!(&a, &b, "injection not reproducible");
        prop_assert!(a.effective_fraction > 0.0 && a.effective_fraction <= 1.0);
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            let targeted = spec.target.blocks().contains(&kind);
            if !targeted {
                prop_assert_eq!(a.conditions.faulty_count(kind), 0);
            }
            let cap = config.block(kind).total_mrs() as usize;
            prop_assert!(a.conditions.faulty_count(kind) <= cap);
        }
    }

    /// Spec strings round-trip for every grid the engine can generate.
    #[test]
    fn grid_spec_strings_round_trip(fraction in 0.01f64..0.2, trials in 1u64..3) {
        for spec in extended_scenario_grid(&[fraction], trials) {
            let text = spec.to_spec_string();
            let parsed: ScenarioSpec = text.parse().unwrap();
            prop_assert_eq!(parsed, spec, "`{}`", text);
        }
    }
}

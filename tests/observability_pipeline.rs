//! End-to-end tests of the observability plane: the chaos grid replayed
//! under a [`safelight_serve::ServeObserver`] must produce a committed
//! audit trace that reconstructs every response-policy decision of every
//! case (presence *and* ordering), byte-identical across worker-thread
//! counts, plus a deterministic metrics snapshot in all three renderings.

use safelight::fault::{FaultSpec, FaultVector};
use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{Network, Trainer, TrainerConfig};
use safelight_onn::{AnalyticBackend, SensorChannel, WeightMapping};
use safelight_serve::chaos::{chaos_grid, run_chaos_observed, ChaosCase};
use safelight_serve::eval::{run_serving_observed, ServingOptions};

/// A trained-enough CNN_1 on the scaled accelerator profile (the same
/// trade the serving/chaos tests make).
fn trained_setup() -> (
    Network,
    WeightMapping,
    AcceleratorConfig,
    safelight_datasets::SplitDataset,
) {
    let data = digits(&SyntheticSpec {
        train: 120,
        test: 60,
        ..SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    let cfg = TrainerConfig {
        epochs: 3,
        batch_size: 20,
        ..TrainerConfig::default()
    };
    Trainer::new(cfg).fit(&mut network, &data.train).unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();
    (network, mapping, config, data)
}

fn quick_opts() -> ServingOptions {
    ServingOptions {
        batch_size: 6,
        batches: 18,
        onset_batch: 6,
        calibration_frames: 24,
        clean_runs: 16,
        ..ServingOptions::default()
    }
}

/// Splits a concatenated multi-case trace into per-case sections, in
/// order. A section starts at its `# case=` header line.
fn case_sections(trace: &str) -> Vec<String> {
    let mut sections: Vec<String> = Vec::new();
    for line in trace.lines() {
        if line.starts_with("# case=") {
            sections.push(String::new());
        }
        if let Some(cur) = sections.last_mut() {
            cur.push_str(line);
            cur.push('\n');
        }
    }
    sections
}

/// The committed sort key of one trace line: `(vt, seq)` plus the stage
/// name (stage order is validated implicitly by vt/seq monotonicity
/// within a stage — the renderer already sorted on the full key).
fn line_key(line: &str) -> Option<(u64, String, u64)> {
    let vt = line.strip_prefix("vt=")?[..6].parse().ok()?;
    let mut parts = line.split_whitespace();
    parts.next()?; // vt=...
    let stage = parts.next()?.to_string();
    let seq = parts.next()?.strip_prefix("seq=")?.parse().ok()?;
    Some((vt, stage, seq))
}

#[test]
fn chaos_grid_audit_trace_reconstructs_every_decision() {
    let (network, mapping, config, data) = trained_setup();
    let cases = chaos_grid(quick_opts().onset_batch);
    let (report, artifacts) = run_chaos_observed(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &cases,
        &default_detectors(),
        &quick_opts(),
        2025,
        safelight_neuro::parallel::configured_threads(),
        true,
    )
    .unwrap();
    let artifacts = artifacts.expect("observe=true returns artifacts");

    // One section per grid case, in input-case order.
    let sections = case_sections(&artifacts.trace);
    assert_eq!(sections.len(), cases.len(), "one trace section per case");
    for (idx, (case, section)) in cases.iter().zip(&sections).enumerate() {
        assert!(
            section.starts_with(&format!("# case={idx:02} kind={}", case.kind())),
            "case {idx} header wrong:\n{}",
            &section[..section.len().min(200)]
        );
    }

    for ((idx, case), (row, section)) in cases
        .iter()
        .enumerate()
        .zip(report.rows.iter().zip(&sections))
    {
        let ctx = |what: &str| format!("case {idx} ({}): missing {what}\n{section}", case.kind());

        // Every decision the report aggregated is present in the audit
        // trace as a structured event with its inputs.
        if row.action.contains("remap") {
            assert!(section.contains("action=remap"), "{}", ctx("remap"));
            assert!(section.contains("event=implicate"), "{}", ctx("implicate"));
            assert!(section.contains("banks=["), "{}", ctx("implicated banks"));
        }
        if row.action.contains("failover") {
            assert!(section.contains("action=failover"), "{}", ctx("failover"));
        }
        if row.maintenance_events > 0 {
            assert!(
                section.contains("action=maintenance"),
                "{}",
                ctx("maintenance")
            );
        }
        if row.action.contains("crash") {
            assert!(section.contains("event=crash member=0"), "{}", ctx("crash"));
        }
        if row.action.contains("recover") {
            assert!(
                section.contains("event=recover member=0"),
                "{}",
                ctx("recover")
            );
        }
        if case.scenario.is_some() {
            assert!(
                section.contains("event=compromise member=0"),
                "{}",
                ctx("compromise")
            );
        }
        // The rail-glitch verdict carries its discriminating input.
        if case
            .fault
            .as_ref()
            .is_some_and(|f| matches!(f.vector, FaultVector::RailGlitch { .. }))
            && section.contains("event=rail_glitch")
        {
            assert!(section.contains("rail_z="), "{}", ctx("rail_z input"));
        }

        // Ordering within the case: committed lines are sorted on the
        // total (vt, stage, seq) key, a crash precedes its recovery, and
        // a compromise precedes the first implication.
        let keys: Vec<(u64, String, u64)> = section
            .lines()
            .filter(|l| !l.starts_with('#'))
            .map(|l| line_key(l).unwrap_or_else(|| panic!("unparseable line: {l}")))
            .collect();
        assert!(!keys.is_empty(), "case {idx}: empty section");
        for w in keys.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "case {idx}: virtual time regressed: {w:?}"
            );
        }
        let pos = |needle: &str| section.lines().position(|l| l.contains(needle));
        if let (Some(c), Some(r)) = (pos("event=crash member=0"), pos("event=recover member=0")) {
            assert!(c < r, "case {idx}: recovery before crash");
        }
        if let (Some(c), Some(i)) = (pos("event=compromise member=0"), pos("event=implicate")) {
            assert!(c < i, "case {idx}: implication before compromise");
        }
        // Every case closes with its end-of-stream summary.
        assert!(
            section.lines().last().unwrap().contains("event=stream_end"),
            "case {idx}: no stream_end:\n{section}"
        );
    }

    // The metrics snapshot aggregates the same decisions the report saw.
    let prom = artifacts.metrics.prometheus();
    if report.rows.iter().any(|r| r.action.contains("remap")) {
        assert!(prom.contains("serve_remaps_total"), "{prom}");
    }
    if report.rows.iter().any(|r| r.action.contains("crash")) {
        assert!(prom.contains("serve_crashes_total"), "{prom}");
    }
    assert!(prom.contains("serve_requests_total"), "{prom}");
    // All three renderings are well-formed and non-empty.
    assert!(artifacts.metrics.json().starts_with('{'));
    assert!(artifacts.metrics.csv().starts_with("# name,"));
}

#[test]
fn committed_artifacts_are_byte_identical_across_thread_counts() {
    let (network, mapping, config, data) = trained_setup();
    let onset = quick_opts().onset_batch;
    // A small mixed slice keeps the determinism check cheap: one sensor
    // fault, one crash, one trojan, one overlap.
    let cases = vec![
        ChaosCase::fault(FaultSpec::new(
            FaultVector::DeadSensor {
                channel: SensorChannel::DropCurrent,
            },
            AttackTarget::FcBlock,
            0.5,
            onset,
        )),
        ChaosCase::fault(FaultSpec::new(
            FaultVector::Crash,
            AttackTarget::Both,
            0.0,
            onset,
        )),
        ChaosCase::trojan(ScenarioSpec::new(
            VectorSpec::Actuation,
            AttackTarget::Both,
            0.10,
            0,
        )),
        ChaosCase::overlap(
            FaultSpec::new(
                FaultVector::RailGlitch {
                    depth: 0.3,
                    duration: 2,
                },
                AttackTarget::Both,
                1.0,
                onset,
            ),
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0),
        ),
    ];
    let run = |threads: usize| {
        run_chaos_observed(
            &network,
            &mapping,
            &AnalyticBackend::new(&config),
            &data.test,
            &cases,
            &default_detectors(),
            &quick_opts(),
            7,
            threads,
            true,
        )
        .unwrap()
        .1
        .expect("observe=true returns artifacts")
    };
    let serial = run(1);
    let parallel = run(4);
    // The committed trace and every metrics rendering are byte-identical;
    // only the wall-clock profile sidecar may differ.
    assert_eq!(serial.trace, parallel.trace);
    assert_eq!(serial.metrics.prometheus(), parallel.metrics.prometheus());
    assert_eq!(serial.metrics.json(), parallel.metrics.json());
    assert_eq!(serial.metrics.csv(), parallel.metrics.csv());
}

#[test]
fn serving_observed_emits_scenario_scoped_artifacts() {
    let (network, mapping, config, data) = trained_setup();
    let scenarios = vec![ScenarioSpec::new(
        VectorSpec::Actuation,
        AttackTarget::Both,
        0.10,
        0,
    )];
    let (report, artifacts) = run_serving_observed(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &scenarios,
        &default_detectors(),
        &quick_opts(),
        11,
        safelight_neuro::parallel::configured_threads(),
        true,
    )
    .unwrap();
    let artifacts = artifacts.expect("observe=true returns artifacts");
    assert_eq!(report.rows.len(), 1);
    assert!(
        artifacts.trace.starts_with("# scenario="),
        "{}",
        &artifacts.trace[..artifacts.trace.len().min(120)]
    );
    assert!(artifacts.trace.contains("event=compromise member=0"));
    assert!(artifacts.trace.contains("event=stream_end"));
    // Metric series are namespaced by scenario spec.
    let prom = artifacts.metrics.prometheus();
    assert!(prom.contains("scenario=\""), "{prom}");
    // Unobserved runs return no artifacts and identical report rows.
    let (unobserved, none) = run_serving_observed(
        &network,
        &mapping,
        &AnalyticBackend::new(&config),
        &data.test,
        &scenarios,
        &default_detectors(),
        &quick_opts(),
        11,
        safelight_neuro::parallel::configured_threads(),
        false,
    )
    .unwrap();
    assert!(none.is_none());
    assert_eq!(unobserved.rows, report.rows, "observation changed results");
}

//! Cross-backend acceptance tests for the `InferenceBackend` abstraction:
//!
//! * the analytic and physical backends agree within tolerance on
//!   effective weights and telemetry frames across the extended fault
//!   grid (every `MrCondition` variant, stacked `Attenuated`/`Detuned`
//!   states included);
//! * the quantized backend's accuracy is monotone in converter bit depth;
//! * every backend exposed via `repro --backend` produces byte-identical
//!   detection CSVs at 1 vs N worker threads.

use proptest::prelude::*;
use safelight::attack::{AttackTarget, ScenarioSpec, VectorSpec};
use safelight::detect::default_detectors;
use safelight::eval::{detection_roc_csv, detection_summary_csv, run_detection, DetectionOptions};
use safelight::models::{build_model, ModelKind};
use safelight_neuro::{accuracy, Flatten, Layer, Linear, Network, Tensor, Trainer, TrainerConfig};
use safelight_onn::{
    effective_weight_row, AcceleratorConfig, AnalyticBackend, BackendKind, BlockConfig, BlockKind,
    ConditionMap, DropResponseModel, InferenceBackend, MrCondition, OpticalVdp, PhysicalBackend,
    QuantizedBackend, SentinelPlan, TapConfig, WeightMapping,
};

/// The per-channel agreement bound between the analytic closed form and
/// the physical read-back. Rings whose drop response falls below the drop
/// floor expose the one modeling difference (the analytic per-rail decode
/// clamps there, the balanced detector sees the full swing), which bounds
/// the gap at ~drop_floor/(1 − drop_floor) ≈ 0.13; everything else agrees
/// to converter precision.
const WEIGHT_TOL: f64 = 0.15;

/// An arbitrary condition from primitive draws, covering every
/// `MrCondition` variant including stacked (heat-carrying) `Attenuated`
/// and `Detuned` states.
fn condition_from(tag: u64, quarter_kelvin: u64, eighth_nm: u64, factor_pct: u64) -> MrCondition {
    let dk = quarter_kelvin as f64 * 0.25;
    let nm = eighth_nm as f64 * 0.125;
    let factor = (factor_pct % 101) as f64 / 100.0;
    match tag % 5 {
        0 => MrCondition::Healthy,
        1 => MrCondition::Parked,
        2 => MrCondition::Heated { delta_kelvin: dk },
        3 => MrCondition::Attenuated {
            factor,
            delta_kelvin: dk,
        },
        _ => MrCondition::Detuned {
            offset_nm: nm,
            delta_kelvin: dk,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The analytic row algebra and the physical one-hot read-back agree
    /// within tolerance for arbitrary weights and fault patterns.
    #[test]
    fn analytic_and_physical_effective_weights_agree(
        w in proptest::collection::vec(-1.0f64..1.0, 4..8),
        tags in proptest::collection::vec(0u64..5, 4..8),
        dks in proptest::collection::vec(0u64..80, 4..8),
        factors in proptest::collection::vec(0u64..=100, 4..8),
    ) {
        let config = AcceleratorConfig::paper().unwrap();
        let p = DropResponseModel::from_config(&config);
        let n = w.len().min(tags.len()).min(dks.len()).min(factors.len());
        let w = &w[..n];
        let conds: Vec<MrCondition> = (0..n)
            .map(|i| condition_from(tags[i], dks[i], dks[i], factors[i]))
            .collect();
        let analytic = effective_weight_row(w, &conds, &p);
        let mut vdp = OpticalVdp::new(&config, n).unwrap();
        let physical = vdp.effective_weight_readback(w, &conds).unwrap();
        for (c, (a, ph)) in analytic.iter().zip(&physical).enumerate() {
            prop_assert!(
                (a - ph).abs() < WEIGHT_TOL,
                "channel {c} ({:?}): analytic {a} vs physical {ph}",
                conds[c]
            );
        }
    }
}

/// A deterministic 16-weight FC fixture shared by the telemetry and
/// detection cross-backend tests.
fn tiny_fixture() -> (Network, WeightMapping, AcceleratorConfig) {
    let mut net = Network::new();
    net.push(Flatten::new());
    let mut fc = Linear::new(4, 4, 3).unwrap();
    fc.params_mut()[0].value = Tensor::from_vec(
        vec![4, 4],
        (0..16).map(|i| 0.15 + (i as f32) / 24.0).collect(),
    )
    .unwrap();
    net.push(fc);
    let config = AcceleratorConfig::custom(
        BlockConfig {
            vdp_units: 2,
            bank_rows: 2,
            bank_cols: 4,
        },
        BlockConfig {
            vdp_units: 2,
            bank_rows: 2,
            bank_cols: 4,
        },
    )
    .unwrap();
    let mapping = WeightMapping::new(
        &config,
        &[safelight_onn::LayerSpec::new("fc", BlockKind::Fc, 16)],
    )
    .unwrap();
    (net, mapping, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The analytic and physical telemetry probes agree within tolerance on
    /// every sensor channel — noiseless means and (same-seed) noisy frames
    /// alike — across the extended condition grid.
    #[test]
    fn analytic_and_physical_telemetry_frames_agree(
        tags in proptest::collection::vec(0u64..5, 1..6),
        dks in proptest::collection::vec(0u64..60, 1..6),
        factors in proptest::collection::vec(0u64..=100, 1..6),
        rings in proptest::collection::vec(0u64..16, 1..6),
    ) {
        let (net, mapping, config) = tiny_fixture();
        let sentinels = SentinelPlan::new(&mapping, &config, 4, 0.7);
        let mut conditions = ConditionMap::new();
        let n = tags.len().min(dks.len()).min(factors.len()).min(rings.len());
        for i in 0..n {
            conditions.stack(
                BlockKind::Fc,
                rings[i],
                condition_from(tags[i], dks[i], dks[i], factors[i]),
            );
        }
        let probe = |backend: &dyn InferenceBackend| {
            backend
                .probe(&net, &mapping, &conditions, &sentinels, TapConfig::default())
                .unwrap()
        };
        let a = probe(&AnalyticBackend::new(&config));
        let p = probe(&PhysicalBackend::new(&config));
        let fa = a.noiseless(0);
        let fp = p.noiseless(0);
        for kind in [BlockKind::Conv, BlockKind::Fc] {
            for (i, (ba, bp)) in fa.banks(kind).iter().zip(fp.banks(kind)).enumerate() {
                prop_assert!(
                    (ba.drop_current - bp.drop_current).abs() < 0.02,
                    "{kind} bank {i} drop: {} vs {}", ba.drop_current, bp.drop_current
                );
                // The non-optical sensors share one code path exactly.
                prop_assert_eq!(ba.delta_kelvin, bp.delta_kelvin);
                prop_assert_eq!(ba.rail_power, bp.rail_power);
                prop_assert_eq!(ba.trim_offset_nm, bp.trim_offset_nm);
            }
            for (sa, sp) in fa.sentinels(kind).iter().zip(fp.sentinels(kind)) {
                prop_assert!((sa - sp).abs() < 0.02, "sentinel {sa} vs {sp}");
            }
        }
        // Same-seed noisy frames differ exactly by the mean gap: the noise
        // stream is shared, so the bound carries over.
        let na = a.frame(3, 99);
        let np = p.frame(3, 99);
        for (ba, bp) in na.banks(BlockKind::Fc).iter().zip(np.banks(BlockKind::Fc)) {
            prop_assert!((ba.drop_current - bp.drop_current).abs() < 0.02);
        }
    }
}

#[test]
fn quantized_backend_accuracy_is_monotone_in_bit_depth() {
    // A trained classifier evaluated through progressively coarser
    // converters: accuracy must not increase as bit depth drops, and the
    // 1-bit extreme must pay a real price.
    let data = safelight_datasets::digits(&safelight_datasets::SyntheticSpec {
        train: 240,
        test: 120,
        ..safelight_datasets::SyntheticSpec::default()
    })
    .unwrap();
    let bundle = build_model(ModelKind::Cnn1, 3).unwrap();
    let mut network = bundle.network;
    Trainer::new(TrainerConfig {
        epochs: 4,
        batch_size: 20,
        ..TrainerConfig::default()
    })
    .fit(&mut network, &data.train)
    .unwrap();
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let mapping = WeightMapping::new(&config, &bundle.layer_specs).unwrap();

    let accuracy_at = |bits: u8| -> f64 {
        let backend = QuantizedBackend::new(&config, bits, bits.max(4));
        let mut effective = backend
            .derive_network(&network, &mapping, &ConditionMap::new())
            .unwrap();
        accuracy(&mut effective, &data.test, 32).unwrap()
    };
    let depths = [8u8, 5, 3, 2, 1];
    let accs: Vec<f64> = depths.iter().map(|&b| accuracy_at(b)).collect();
    // Tolerance: the quantized backend runs inference through the integer
    // datapath, which also puts *activations* on the input-DAC grid. At
    // fine weight depths that grid noise moves a handful of the 120 test
    // samples either way, so adjacent depths can swap by a few samples;
    // the monotone trend and the 1-bit cliff are the physical claims.
    for (pair, (&hi, &lo)) in accs.windows(2).zip(depths.iter().zip(&depths[1..])) {
        assert!(
            pair[1] <= pair[0] + 0.04,
            "accuracy rose when dropping {hi} → {lo} bits: {} → {}",
            pair[0],
            pair[1]
        );
    }
    assert!(
        accs[accs.len() - 1] < accs[0] - 0.05,
        "1-bit weights should cost real accuracy: {accs:?}"
    );
}

#[test]
fn detection_csvs_are_thread_invariant_for_every_backend() {
    // The acceptance bar: each backend exposed via `repro --backend`
    // produces byte-identical detection CSVs at 1 vs N worker threads.
    // Runs on the tiny fixture so the optical backend (which simulates
    // every telemetry slot) stays affordable in debug builds.
    let (net, mapping, config) = tiny_fixture();
    let scenarios = vec![
        ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::FcBlock, 0.25, 0),
        ScenarioSpec::new(VectorSpec::laser_default(), AttackTarget::FcBlock, 0.25, 0),
    ];
    let opts = DetectionOptions {
        frames: 8,
        onset: 3,
        calibration_frames: 12,
        clean_runs: 8,
        attack_runs: 2,
        threshold_points: 4,
        sentinels_per_block: 4,
        ..DetectionOptions::default()
    };
    for kind in BackendKind::all() {
        let backend = kind.build(&config);
        let run = |threads: usize| {
            run_detection(
                &net,
                &mapping,
                backend.as_ref(),
                &scenarios,
                &default_detectors(),
                &opts,
                2025,
                threads,
            )
            .unwrap()
        };
        let serial = run(1);
        let parallel = run(3);
        assert_eq!(
            detection_roc_csv(&serial),
            detection_roc_csv(&parallel),
            "backend `{}` ROC differs across thread counts",
            backend.name()
        );
        assert_eq!(
            detection_summary_csv(&serial),
            detection_summary_csv(&parallel),
            "backend `{}` summary differs across thread counts",
            backend.name()
        );
    }
}

#[test]
fn backends_share_one_physics_model() {
    // The refactor's acceptance criterion in executable form: every
    // backend reports the same DropResponseModel constants for the same
    // configuration — there is exactly one physics implementation.
    let config = AcceleratorConfig::scaled_experiment().unwrap();
    let reference = DropResponseModel::from_config(&config);
    for kind in [BackendKind::Fast, BackendKind::Optical] {
        assert_eq!(kind.build(&config).model(), &reference, "{kind}");
    }
    // The quantized backend differs only in its DAC step count.
    let quantized = BackendKind::quantized_default().build(&config);
    let mut expected = reference;
    expected.dac_steps = DropResponseModel::steps_from_bits(BackendKind::DEFAULT_WEIGHT_BITS);
    assert_eq!(quantized.model(), &expected);
}

//! Offline stand-in for the [`proptest`](https://docs.rs/proptest) crate.
//!
//! The evaluation container has no crates.io access, so the workspace
//! vendors this minimal, API-compatible subset. It covers the surface the
//! SafeLight property suites use:
//!
//! * the [`proptest!`] macro over functions whose arguments are
//!   `name in strategy` bindings, with an optional leading
//!   `#![proptest_config(...)]`;
//! * range strategies over the primitive integers and floats
//!   (`0usize..16`, `-20.0f64..20.0`, `0.0f64..=1.0`);
//! * [`collection::vec`] with a fixed length or a length range;
//! * [`any`] for types implementing the local [`strategy::Arbitrary`];
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! immediately with its case number and the deterministic seed, which is
//! enough to replay it. Generation is fully deterministic per
//! (test-name, case-index) pair, so failures reproduce across runs.

/// Strategy abstraction: something that can draw a value from the RNG.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The value type this strategy produces.
        type Value;
        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = (rng.next_u64() as u128) % span;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let off = (rng.next_u64() as u128) % span;
                    (lo as i128 + off as i128) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = rng.unit_f64() as $t;
                    self.start + unit * (self.end - self.start)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    // Map the top of the unit interval onto the inclusive
                    // endpoint so `hi` is actually reachable.
                    let unit = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
                    lo + (unit as $t) * (hi - lo)
                }
            }
        )+};
    }
    float_range_strategy!(f32, f64);

    /// Strategy returned by [`crate::any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length specification: fixed or drawn from a range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            Self {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a strategy-drawn length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length is drawn from `size` (a `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-runner plumbing: configuration and the deterministic RNG.
pub mod test_runner {
    /// Per-test configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    /// Deterministic SplitMix64 generator seeded from (test name, case).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for one case of one named property test.
        #[must_use]
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the name, mixed with the case index. The stream
            // constant (`^ 1`) selects this shim's concrete draw sequence;
            // it is as arbitrary as real proptest's default RNG seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ 1;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self {
                state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
            }
        }

        /// Next raw 64-bit draw (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Returns the canonical strategy for `T` (`any::<bool>()` etc.).
#[must_use]
pub fn any<T: strategy::Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// The one-stop import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest};
}

/// Asserts a condition inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, with optional format message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Declares property tests: each function runs `cases` times with fresh
/// deterministically-seeded inputs drawn from its `in` strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                )+
                // One scope per case so a failure names the case index.
                let __run = || $body;
                __run();
            }
        }
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("x", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ints", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(3usize..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::sample(&(-5i64..=5), &mut rng);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("floats", 0);
        for _ in 0..1000 {
            let v = Strategy::sample(&(-2.0f64..3.0), &mut rng);
            assert!((-2.0..3.0).contains(&v));
            let w = Strategy::sample(&(0.0f64..=1.0), &mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_respects_length_spec() {
        let mut rng = TestRng::for_case("vecs", 0);
        let fixed = crate::collection::vec(0.0f64..1.0, 6).sample(&mut rng);
        assert_eq!(fixed.len(), 6);
        for _ in 0..100 {
            let ranged = crate::collection::vec(any::<bool>(), 3..8).sample(&mut rng);
            assert!((3..8).contains(&ranged.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: bindings, multiple args, doc attrs.
        #[test]
        fn macro_binds_arguments(x in 0usize..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y), "y = {y}");
        }

        #[test]
        fn macro_supports_collections(v in crate::collection::vec(0u8..4, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            for b in v {
                prop_assert!(b < 4);
            }
        }
    }
}

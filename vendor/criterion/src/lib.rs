//! Offline stand-in for the [`criterion`](https://docs.rs/criterion) crate.
//!
//! The evaluation container has no crates.io access, so the workspace
//! vendors this minimal, API-compatible subset instead of the real
//! dependency. It covers exactly the surface the `safelight-bench` suite
//! uses:
//!
//! * [`Criterion::bench_function`] / [`Criterion::benchmark_group`]
//! * [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`]
//!   / [`BenchmarkGroup::sample_size`] / [`BenchmarkGroup::finish`]
//! * [`Bencher::iter`], [`black_box`], [`BenchmarkId`]
//! * the [`criterion_group!`] / [`criterion_main!`] macros
//!
//! Timing model: each benchmark is warmed up briefly, then run for
//! `sample_size` samples; every sample times a batch of iterations sized so
//! one sample takes roughly `target_time / sample_size`. The harness prints
//! `min / median / mean` per-iteration times in criterion-like one-line
//! format. Passing `--test` (what `cargo bench -- --test` forwards) runs
//! every benchmark exactly once for smoke coverage, matching real
//! criterion's behaviour of skipping measurement in test mode.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Which benchmarks to run and how, parsed from the command line.
#[derive(Debug, Clone)]
struct RunMode {
    /// Run each benchmark body once, skip measurement (`--test`).
    test_only: bool,
    /// Substring filter on benchmark names (first free argument).
    filter: Option<String>,
}

impl RunMode {
    fn from_args() -> Self {
        let mut test_only = false;
        let mut filter = None;
        let mut args = std::env::args().skip(1).peekable();
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => test_only = true,
                // Flags cargo-bench/criterion commonly forward; accept and
                // ignore their values where they take one.
                "--bench" | "--color" | "--save-baseline" | "--baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    if matches!(arg.as_str(), "--color" | "--save-baseline" | "--baseline") {
                        let _ = args.next();
                    }
                }
                other if other.starts_with("--") => {}
                other => filter = Some(other.to_string()),
            }
        }
        Self { test_only, filter }
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// Identifies a benchmark within a group, e.g. a parameter point.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function: S, parameter: P) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Drives iterations of one benchmark body and records their timing.
pub struct Bencher<'a> {
    mode: &'a RunMode,
    sample_size: usize,
    target_time: Duration,
    /// Per-iteration durations of each measured sample.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Times `routine`, criterion-style: auto-calibrated batches, one batch
    /// per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode.test_only {
            black_box(routine());
            return;
        }
        // Calibrate: how many iterations fit in ~1/50 of the target time?
        let probe = Instant::now();
        black_box(routine());
        let once = probe.elapsed().max(Duration::from_nanos(20));
        let per_sample = self.target_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample =
            ((per_sample / once.as_secs_f64()).ceil() as u64).clamp(1, 1_000_000);

        // Warm-up: roughly one sample's worth of work.
        for _ in 0..iters_per_sample.min(1_000) {
            black_box(routine());
        }

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

fn run_one(mode: &RunMode, name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    if !mode.matches(name) {
        return;
    }
    let mut bencher = Bencher {
        mode,
        sample_size,
        target_time: Duration::from_secs(1),
        samples: Vec::new(),
    };
    f(&mut bencher);
    if mode.test_only {
        println!("{name}: test passed");
        return;
    }
    let mut sorted = bencher.samples.clone();
    if sorted.is_empty() {
        println!("{name}: no samples recorded");
        return;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
    println!(
        "{name:<48} time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(mean)
    );
}

/// Top-level benchmark harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    mode: RunMode,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            mode: RunMode::from_args(),
            sample_size: 60,
        }
    }
}

impl Criterion {
    /// Sets the default number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(&self.mode, name, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }

    /// Criterion calls this after all groups ran; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Sets the measurement time for this group (accepted, unused).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Declares throughput metadata (accepted, unused).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<I: std::fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &self.criterion.mode,
            &name,
            self.effective_sample_size(),
            &mut f,
        );
        self
    }

    /// Runs one parameterized benchmark inside the group.
    pub fn bench_with_input<I: std::fmt::Display, T, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        run_one(
            &self.criterion.mode,
            &name,
            self.effective_sample_size(),
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput metadata, accepted for API compatibility.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_runs_routine_and_records_samples() {
        let mode = RunMode {
            test_only: false,
            filter: None,
        };
        let mut b = Bencher {
            mode: &mode,
            sample_size: 5,
            target_time: Duration::from_millis(5),
            samples: Vec::new(),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            count
        });
        assert_eq!(b.samples.len(), 5);
        assert!(count > 5);
        assert!(b.samples.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn test_mode_runs_once() {
        let mode = RunMode {
            test_only: true,
            filter: None,
        };
        let mut b = Bencher {
            mode: &mode,
            sample_size: 10,
            target_time: Duration::from_secs(1),
            samples: Vec::new(),
        };
        let mut count = 0;
        b.iter(|| count += 1);
        assert_eq!(count, 1);
        assert!(b.samples.is_empty());
    }

    #[test]
    fn filter_matches_substring() {
        let mode = RunMode {
            test_only: false,
            filter: Some("conv".into()),
        };
        assert!(mode.matches("conv2d_forward"));
        assert!(!mode.matches("linear_forward"));
        let open = RunMode {
            test_only: false,
            filter: None,
        };
        assert!(open.matches("anything"));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
        assert_eq!(BenchmarkId::new("solve", 32).to_string(), "solve/32");
    }

    #[test]
    fn time_formatting_picks_unit() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}

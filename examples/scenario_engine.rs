//! Tour of the composable attack-scenario engine: the paper's two trojan
//! vectors next to the new laser power-degradation and trim-drift vectors,
//! a stacked multi-vector scenario, and the three trojan-placement
//! strategies (uniform / clustered / magnitude-targeted).
//!
//! ```sh
//! cargo run --release --example scenario_engine
//! ```

use safelight::attack::RingSalience;
use safelight::eval::{evaluate_with_conditions, inject_all};
use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{accuracy, Trainer, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = digits(&SyntheticSpec {
        train: 1200,
        test: 300,
        ..SyntheticSpec::default()
    })?;
    let bundle = build_model(ModelKind::Cnn1, 42)?;
    let mut network = bundle.network;
    Trainer::new(TrainerConfig {
        epochs: 8,
        learning_rate: 0.02,
        lr_decay_epochs: 4,
        ..TrainerConfig::default()
    })
    .fit(&mut network, &data.train)?;

    let config = matched_accelerator(ModelKind::Cnn1)?;
    let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;
    let mut clean = corrupt_network(&network, &mapping, &ConditionMap::new(), &config)?;
    let baseline = accuracy(&mut clean, &data.test, 32)?;
    println!("clean ONN accuracy: {:.1}%\n", baseline * 100.0);

    // Every scenario is a plain value and round-trips through its spec
    // string, so grids can live in config files or CLI flags.
    let mut scenarios = vec![
        ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.05, 0),
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.05, 0),
        "laser:3/uniform/both/0.05/0".parse::<ScenarioSpec>()?,
        "trim:0.4/uniform/both/0.05/0".parse::<ScenarioSpec>()?,
        // Stacked: actuation + hotspot trojans in one condition map.
        ScenarioSpec::stacked(
            vec![VectorSpec::Actuation, VectorSpec::Hotspot],
            AttackTarget::Both,
            0.05,
            0,
        ),
    ];
    // The same actuation attack under each placement strategy: a clustered
    // foundry trojan and a netlist-aware adversary that targets the rings
    // carrying the largest |weights|.
    for selection in Selection::all() {
        scenarios.push(
            ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.05, 0)
                .with_selection(selection),
        );
    }

    // Targeted selection needs the weight-salience map of the deployed
    // network; one pass feeds every scenario.
    let salience = RingSalience::from_network(&network, &mapping, &config)?;
    let injected = inject_all(&config, &scenarios, Some(&salience), 7, 2)?;
    let backend = safelight_onn::AnalyticBackend::new(&config);
    let trials = evaluate_with_conditions(&network, &mapping, &backend, &data.test, &injected, 2)?;

    println!(
        "{:<42} {:>6} {:>10} {:>8}",
        "scenario", "eff%", "accuracy", "drop"
    );
    for t in &trials {
        println!(
            "{:<42} {:>5.1}% {:>9.1}% {:>7.1}",
            t.scenario.to_spec_string(),
            t.effective_fraction * 100.0,
            t.accuracy * 100.0,
            (baseline - t.accuracy) * 100.0
        );
    }
    Ok(())
}

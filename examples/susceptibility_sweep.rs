//! Run a miniature version of the paper's SS IV susceptibility analysis
//! (Fig. 7) for one model and print per-scenario accuracy statistics.
//!
//! ```sh
//! cargo run --release --example susceptibility_sweep
//! ```

use safelight::experiment::{run_fig7, ExperimentOptions, Fidelity};
use safelight::models::ModelKind;
use safelight::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let opts = ExperimentOptions {
        fidelity: Fidelity::Quick,
        ..ExperimentOptions::default()
    };
    let (bench, report) = run_fig7(ModelKind::Cnn1, &opts)?;
    println!(
        "CNN_1 on the matched accelerator (CONV rounds {}, FC rounds {})",
        bench.mapping.rounds(BlockKind::Conv),
        bench.mapping.rounds(BlockKind::Fc)
    );
    println!("baseline accuracy: {:.1}%", report.baseline * 100.0);
    for vector in VectorSpec::paper_pair() {
        for fraction in opts.fractions() {
            let accs: Vec<f64> = report
                .filtered(|s| s.has_vector(vector) && (s.fraction - fraction).abs() < 1e-12)
                .iter()
                .map(|t| t.accuracy)
                .collect();
            let mean = accs.iter().sum::<f64>() / accs.len().max(1) as f64;
            println!(
                "{vector:<10} {:>4.0}% of MRs: mean accuracy {:.1}%",
                fraction * 100.0,
                mean * 100.0
            );
        }
    }
    println!("worst-case drop: {:.1} points", report.worst_drop() * 100.0);
    Ok(())
}

//! Tour of the runtime trojan-detection subsystem: telemetry taps on the
//! accelerator's physical side-channels, the pluggable detector suite, and
//! the ROC/latency evaluation over the extended threat model.
//!
//! ```sh
//! cargo run --release --example trojan_detection
//! ```

use safelight::eval::run_detection;
use safelight::prelude::*;
use safelight_onn::{SentinelPlan, TapConfig, TelemetryFrame, TelemetryProbe};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Detection watches sensors, not accuracy, so an untrained (but
    // mapped) model is all the demo needs.
    let bundle = build_model(ModelKind::Cnn1, 42)?;
    let config = matched_accelerator(ModelKind::Cnn1)?;
    let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;

    // --- Telemetry: one serializable frame per inference batch. ---------
    let sentinels = SentinelPlan::new(&mapping, &config, 32, 0.7);
    let clean_probe = TelemetryProbe::new(
        &bundle.network,
        &mapping,
        &ConditionMap::new(),
        &config,
        &sentinels,
        TapConfig::default(),
    )?;
    let frame = clean_probe.frame(0, 7);
    println!(
        "clean frame: {} CONV banks, {} FC banks, {} sentinels",
        frame.banks(BlockKind::Conv).len(),
        frame.banks(BlockKind::Fc).len(),
        frame.sentinels(BlockKind::Conv).len() + frame.sentinels(BlockKind::Fc).len()
    );
    // Frames round-trip through CSV for off-chip logging.
    let parsed = TelemetryFrame::from_csv(&frame.to_csv())?;
    assert_eq!(parsed, frame);

    // An attacked accelerator shifts the sensors the trojan touches.
    let spec = ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0);
    let conditions = inject(&spec, &config, 7)?;
    let attacked_probe = TelemetryProbe::new(
        &bundle.network,
        &mapping,
        &conditions,
        &config,
        &sentinels,
        TapConfig::default(),
    )?;
    let attacked = attacked_probe.noiseless(0);
    let clean = clean_probe.noiseless(0);
    println!(
        "10% actuation moves CONV bank 0 drop current {:.4} -> {:.4}",
        clean.banks(BlockKind::Conv)[0].drop_current,
        attacked.banks(BlockKind::Conv)[0].drop_current,
    );

    // --- Detection: calibrate, then alarm on the attacked stream. -------
    let mut guard = GuardBandDetector::default();
    let calibration: Vec<TelemetryFrame> = (0..32).map(|b| clean_probe.frame(b, 1)).collect();
    guard.calibrate(&calibration)?;
    println!(
        "guard-band score: clean {:.2} vs attacked {:.2}",
        guard.score(&clean_probe.frame(0, 99)),
        guard.score(&attacked_probe.frame(0, 99)),
    );

    // --- Evaluation: ROC + latency across a small scenario grid. --------
    let scenarios = vec![
        ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0),
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::ConvBlock, 0.05, 0),
        ScenarioSpec::new(VectorSpec::laser_default(), AttackTarget::FcBlock, 0.05, 0),
        ScenarioSpec::stacked(stacked_pair(), AttackTarget::Both, 0.05, 0),
    ];
    let report = run_detection(
        &bundle.network,
        &mapping,
        &safelight_onn::AnalyticBackend::new(&config),
        &scenarios,
        &default_detectors(),
        &DetectionOptions {
            frames: 16,
            onset: 6,
            clean_runs: 24,
            ..DetectionOptions::default()
        },
        2025,
        safelight_neuro::parallel::configured_threads(),
    )?;
    println!("\ndetector     vector               TPR     latency");
    for c in &report.cells {
        println!(
            "{:<12} {:<20} {:>5.0}% {:>9}",
            c.detector,
            format!("{} {:.0}%", c.vector, c.fraction * 100.0),
            c.tpr * 100.0,
            if c.mean_latency_frames.is_finite() {
                format!("{:.1} fr", c.mean_latency_frames)
            } else {
                "—".into()
            }
        );
    }
    let best = report.best_for(&scenarios[0]).expect("cell evaluated");
    println!(
        "\nbest detector on 10% actuation: {} (TPR {:.0}%, FPR target met)",
        best.detector,
        best.tpr * 100.0
    );
    Ok(())
}

//! Quickstart: train a small CNN, map it onto the optical accelerator,
//! inject one hardware-trojan attack of each kind, and measure the damage.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{accuracy, Trainer, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic MNIST-style dataset (deterministic, no downloads).
    let data = digits(&SyntheticSpec {
        train: 1200,
        test: 300,
        ..SyntheticSpec::default()
    })?;

    // 2. The paper's CNN_1 model (2 CONV + 3 FC layers).
    let bundle = build_model(ModelKind::Cnn1, 42)?;
    let mut network = bundle.network;
    let trainer = Trainer::new(TrainerConfig {
        epochs: 10,
        learning_rate: 0.02,
        lr_decay_epochs: 5,
        ..TrainerConfig::default()
    });
    let report = trainer.fit(&mut network, &data.train)?;
    println!(
        "trained CNN_1: final train accuracy {:.1}%",
        report.final_train_accuracy * 100.0
    );

    // 3. Map the model onto an accelerator whose structural ratios match
    //    the paper's (utilization, reuse rounds, bank granularity).
    let config = matched_accelerator(ModelKind::Cnn1)?;
    let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;
    println!(
        "mapped onto ONN: CONV untilization {:.1}%, FC utilization {:.1}%",
        mapping.utilization(BlockKind::Conv) * 100.0,
        mapping.utilization(BlockKind::Fc) * 100.0
    );

    // 4. Clean accelerator baseline (DAC quantization only).
    let mut clean = corrupt_network(&network, &mapping, &ConditionMap::new(), &config)?;
    let baseline = accuracy(&mut clean, &data.test, 32)?;
    println!("clean ONN accuracy: {:.1}%", baseline * 100.0);

    // 5. One attack of each paper vector at 5% intensity, plus a stacked
    //    actuation+hotspot scenario.
    let mut scenarios: Vec<ScenarioSpec> = VectorSpec::paper_pair()
        .into_iter()
        .map(|vector| ScenarioSpec::new(vector, AttackTarget::Both, 0.05, 0))
        .collect();
    scenarios.push(ScenarioSpec::stacked(
        VectorSpec::paper_pair().to_vec(),
        AttackTarget::Both,
        0.05,
        0,
    ));
    for scenario in scenarios {
        let conditions = inject(&scenario, &config, 7)?;
        let mut attacked = corrupt_network(&network, &mapping, &conditions, &config)?;
        let acc = accuracy(&mut attacked, &data.test, 32)?;
        println!(
            "{scenario}: accuracy {:.1}% (drop {:.1} points)",
            acc * 100.0,
            (baseline - acc) * 100.0
        );
    }
    Ok(())
}

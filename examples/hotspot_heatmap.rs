//! Reproduce the paper's Fig. 6 on demand: heat two CONV banks through the
//! thermal solver and render the resulting ΔT field.
//!
//! ```sh
//! cargo run --release --example hotspot_heatmap
//! ```

use safelight::experiment::{run_fig6, ExperimentOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let artifact = run_fig6(&ExperimentOptions::default())?;
    println!(
        "attacked banks {:?}; peak dT {:.1} K; mean neighbour spill {:.2} K",
        artifact.attacked_banks, artifact.peak_delta_kelvin, artifact.neighbour_mean_delta_kelvin
    );
    // ASCII rendering (hot areas dense). The CSV/PGM exports are written by
    // the `repro --fig6` binary.
    println!("{}", artifact.heatmap.to_ascii());
    Ok(())
}

//! A guided tour of the secure serving runtime: build a two-member
//! accelerator fleet, stream requests through the micro-batching
//! scheduler, land a mid-stream actuation compromise on one member and
//! watch the closed loop detect it, quarantine/remap the implicated
//! banks and recover — then compare against the no-response baseline.
//!
//! ```sh
//! cargo run --release --example secure_serving
//! ```

use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::{Trainer, TrainerConfig};
use safelight_onn::WeightMapping;
use safelight_serve::eval::{run_serving, ServingOptions};
use safelight_serve::report::serving_csv;

fn main() -> Result<(), SafelightError> {
    // 1. A small trained CNN_1 mapped onto the scaled accelerator.
    println!("training a small CNN_1 …");
    let data = digits(&SyntheticSpec {
        train: 200,
        test: 80,
        ..SyntheticSpec::default()
    })?;
    let bundle = build_model(ModelKind::Cnn1, 3)?;
    let mut network = bundle.network;
    Trainer::new(TrainerConfig {
        epochs: 4,
        batch_size: 20,
        ..TrainerConfig::default()
    })
    .fit(&mut network, &data.train)?;
    let config = AcceleratorConfig::scaled_experiment()?;
    let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;

    // 2. The compromise: a worst-case 10 % actuation attack landing
    //    mid-stream on member 0 of the fleet, plus a milder clustered
    //    hotspot for comparison.
    let scenarios = vec![
        ScenarioSpec::new(VectorSpec::Actuation, AttackTarget::Both, 0.10, 0)
            .with_selection(Selection::Targeted),
        ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::ConvBlock, 0.05, 0)
            .with_selection(Selection::Clustered),
    ];

    // 3. Serve: every scenario is replayed as a request stream against
    //    the closed-loop fleet and the no-response baseline.
    let opts = ServingOptions {
        batch_size: 8,
        batches: 24,
        onset_batch: 8,
        ..ServingOptions::default()
    };
    let report = run_serving(
        &network,
        &mapping,
        &safelight_onn::AnalyticBackend::new(&config),
        &data.test,
        &scenarios,
        &default_detectors(),
        &opts,
        2025,
        safelight_neuro::parallel::configured_threads(),
    )?;

    println!(
        "\nclean fleet accuracy {:.1} % ({} members × {}-request batches)",
        report.clean_accuracy * 100.0,
        report.fleet_size,
        report.batch_size
    );
    for row in &report.rows {
        println!("\nscenario {}:", row.scenario);
        println!(
            "  pre-onset {:.1} %  degraded {:.1} %  recovered {}  baseline (no response) {:.1} %",
            row.pre_onset_accuracy * 100.0,
            row.degraded_accuracy * 100.0,
            if row.recovered_accuracy.is_finite() {
                format!("{:.1} %", row.recovered_accuracy * 100.0)
            } else {
                "—".into()
            },
            row.baseline_post_accuracy * 100.0,
        );
        println!(
            "  detected in {} batch(es), recovered in {}, action: {} \
             ({} rings remapped, {} unplaced), availability {:.1} %",
            row.detection_latency_batches,
            if row.recovery_latency_batches.is_finite() {
                format!("{} batch(es)", row.recovery_latency_batches)
            } else {
                "never".into()
            },
            row.action,
            row.remapped_rings,
            row.unplaced_rings,
            row.availability * 100.0,
        );
    }

    println!("\nserving CSV:\n{}", serving_csv(&report));
    Ok(())
}

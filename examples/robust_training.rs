//! Train the paper's mitigation variants (L2 regularization and Gaussian
//! noise-aware training, SS V) and compare their robustness to a 5%
//! hotspot attack.
//!
//! ```sh
//! cargo run --release --example robust_training
//! ```

use safelight::prelude::*;
use safelight_datasets::{digits, SyntheticSpec};
use safelight_neuro::accuracy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = digits(&SyntheticSpec {
        train: 1200,
        test: 300,
        ..SyntheticSpec::default()
    })?;
    let kind = ModelKind::Cnn1;
    let config = matched_accelerator(kind)?;
    let bundle = build_model(kind, 42)?;
    let mapping = WeightMapping::new(&config, &bundle.layer_specs)?;
    let recipe = safelight::defense::TrainingRecipe::for_model(kind);

    let scenario = ScenarioSpec::new(VectorSpec::Hotspot, AttackTarget::Both, 0.05, 1);
    let conditions = inject(&scenario, &config, 7)?;

    println!("{:<10} {:>10} {:>12}", "variant", "clean", "under attack");
    for variant in [
        VariantKind::Original,
        VariantKind::L2Only,
        VariantKind::L2Noise(3),
        VariantKind::L2Noise(5),
    ] {
        let network = train_variant(kind, variant, &data, &recipe, None)?;
        let mut clean = corrupt_network(&network, &mapping, &ConditionMap::new(), &config)?;
        let mut attacked = corrupt_network(&network, &mapping, &conditions, &config)?;
        println!(
            "{:<10} {:>9.1}% {:>11.1}%",
            variant.label(),
            accuracy(&mut clean, &data.test, 32)? * 100.0,
            accuracy(&mut attacked, &data.test, 32)? * 100.0
        );
    }
    Ok(())
}
